// Per-cluster circuit breaker (closed -> open -> half-open).
//
// PR 1's quarantine reacts AFTER a deployment has burned its whole retry
// budget; the breaker reacts DURING the window in which a cluster goes
// sick.  It keeps a rolling success/failure window plus a windowed latency
// distribution (telemetry::Histogram bucket deltas, the same mechanism the
// SLO watchdog uses) and trips when the failure ratio or the latency
// quantile over the window crosses its threshold:
//
//   closed     every request allowed; outcomes recorded into the window.
//   open       every request short-circuited (the scheduler routes around
//              the cluster); after `openCooldown` the breaker half-opens.
//   half-open  up to `halfOpenProbes` concurrent probe requests pass
//              through; `closeAfterProbes` consecutive probe successes
//              close the breaker, any probe failure re-opens it.
//
// All calls run on the simulation thread (the Dispatcher's control lane);
// the breaker advances its own state from the `now` it is handed, so it
// needs no timers and stays deterministic.  Telemetry (optional) exports
//   edgesim_breaker_state{cluster}              0 closed / 1 open / 2 half
//   edgesim_breaker_transitions_total{cluster,to}
//   edgesim_breaker_short_circuits_total{cluster}
//   edgesim_breaker_latency_seconds{cluster}
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/metrics_registry.hpp"

namespace edgesim::overload {

struct BreakerOptions {
  /// Rolling observation window and its slice granularity.
  SimTime window = SimTime::seconds(10.0);
  int slices = 10;
  /// Minimum outcomes in the window before the breaker may trip.
  std::uint64_t minSamples = 8;
  /// Trip when failures / total >= this ratio over the window.
  double failureRatio = 0.5;
  /// Trip when the windowed latency quantile exceeds the threshold;
  /// a non-positive threshold disables the latency trip.
  double latencyQuantile = 0.95;
  double latencyThresholdSeconds = 0.0;
  /// Open -> half-open after this cooldown.
  SimTime openCooldown = SimTime::seconds(5.0);
  /// Concurrent probe requests admitted while half-open.
  int halfOpenProbes = 2;
  /// Consecutive probe successes needed to close again.
  int closeAfterProbes = 2;
};

enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* breakerStateName(BreakerState state);

class CircuitBreaker {
 public:
  CircuitBreaker(std::string cluster, BreakerOptions options,
                 telemetry::MetricsRegistry* telemetry = nullptr);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Current state, advancing open -> half-open when the cooldown elapsed.
  BreakerState state(SimTime now);

  /// Would a request routed to this cluster be admitted right now?  Does
  /// NOT reserve a probe slot (the scheduler asks for every candidate
  /// cluster; only the chosen one actually sends a probe).  Counts a
  /// short-circuit when the answer is no.
  bool allow(SimTime now);

  /// The chosen cluster is being probed while half-open: reserve a slot.
  /// No-op outside half-open.
  void beginProbe(SimTime now);
  /// A begun probe never produced an outcome (e.g. the deployment was
  /// refused by the deploy-token cap): release the slot without judging
  /// the cluster.  No-op outside half-open.
  void cancelProbe(SimTime now);

  /// Outcome of a request routed to this cluster.  In half-open these
  /// settle the probe; in closed they feed the rolling window and may trip
  /// the breaker.
  void recordSuccess(SimTime now, double latencySeconds);
  void recordFailure(SimTime now);

  const std::string& cluster() const { return cluster_; }
  std::uint64_t shortCircuits() const { return shortCircuits_; }
  std::uint64_t timesOpened() const { return timesOpened_; }

  /// Windowed totals (testing / introspection).
  std::uint64_t windowSuccesses(SimTime now);
  std::uint64_t windowFailures(SimTime now);

 private:
  struct Slice {
    std::int64_t index = -1;  // sliceIndex this slot currently holds
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    std::vector<std::uint64_t> latencyBuckets;  // telemetry::Histogram tiling
  };

  std::int64_t sliceIndex(SimTime now) const {
    return now.toNanos() / sliceNanos_;
  }
  Slice& sliceFor(SimTime now);
  void expireSlices(SimTime now);
  void transition(BreakerState to, SimTime now);
  void maybeTrip(SimTime now);
  void clearWindow();

  const std::string cluster_;
  const BreakerOptions options_;
  const std::int64_t sliceNanos_;

  BreakerState state_ = BreakerState::kClosed;
  SimTime openedAt_;
  int probesInFlight_ = 0;
  int probeSuccesses_ = 0;

  std::vector<Slice> slices_;  // ring keyed by sliceIndex % slices
  std::uint64_t shortCircuits_ = 0;
  std::uint64_t timesOpened_ = 0;

  // Telemetry handles (null when telemetry is off).
  telemetry::Gauge* stateGauge_ = nullptr;
  telemetry::Counter* toOpen_ = nullptr;
  telemetry::Counter* toHalfOpen_ = nullptr;
  telemetry::Counter* toClosed_ = nullptr;
  telemetry::Counter* shortCircuitCtr_ = nullptr;
  telemetry::Histogram* latencyHist_ = nullptr;
};

}  // namespace edgesim::overload
