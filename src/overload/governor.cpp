#include "overload/governor.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace edgesim::overload {

const char* shedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kBudgetExpired: return "budget_expired";
    case ShedReason::kDeployCap: return "deploy_cap";
  }
  return "?";
}

OverloadOptions OverloadOptions::fromConfig(const Config& config) {
  OverloadOptions options;
  options.enabled = config.getBoolOr("overload_enabled", options.enabled);
  options.laneQueueCapacity = static_cast<std::size_t>(config.getIntOr(
      "overload_lane_queue_capacity",
      static_cast<std::int64_t>(options.laneQueueCapacity)));
  options.shedPolicy =
      config.getStringOr("overload_shed_policy", options.shedPolicy);
  options.requestBudget = SimTime::millis(config.getIntOr(
      "overload_request_budget_ms",
      options.requestBudget.toNanos() / 1000000));
  options.maxDeploysPerCluster = static_cast<int>(config.getIntOr(
      "overload_max_deploys_per_cluster", options.maxDeploysPerCluster));
  options.breakerEnabled =
      config.getBoolOr("overload_breaker_enabled", options.breakerEnabled);
  options.breaker.window = SimTime::millis(config.getIntOr(
      "overload_breaker_window_ms", options.breaker.window.toNanos() / 1000000));
  options.breaker.minSamples = static_cast<std::uint64_t>(config.getIntOr(
      "overload_breaker_min_samples",
      static_cast<std::int64_t>(options.breaker.minSamples)));
  options.breaker.failureRatio = config.getDoubleOr(
      "overload_breaker_failure_ratio", options.breaker.failureRatio);
  options.breaker.latencyThresholdSeconds =
      config.getDoubleOr("overload_breaker_latency_threshold_ms",
                         options.breaker.latencyThresholdSeconds * 1e3) /
      1e3;
  options.breaker.openCooldown = SimTime::millis(config.getIntOr(
      "overload_breaker_cooldown_ms",
      options.breaker.openCooldown.toNanos() / 1000000));
  options.brownoutShedThreshold = static_cast<std::uint64_t>(config.getIntOr(
      "overload_brownout_shed_threshold",
      static_cast<std::int64_t>(options.brownoutShedThreshold)));
  options.brownoutWindow = SimTime::millis(config.getIntOr(
      "overload_brownout_window_ms",
      options.brownoutWindow.toNanos() / 1000000));
  options.brownoutMinDwell = SimTime::millis(config.getIntOr(
      "overload_brownout_min_dwell_ms",
      options.brownoutMinDwell.toNanos() / 1000000));
  return options;
}

OverloadGovernor::OverloadGovernor(OverloadOptions options,
                                   telemetry::MetricsRegistry* telemetry)
    : options_(std::move(options)), telemetry_(telemetry) {
  if (telemetry_ != nullptr) {
    for (std::size_t i = 0; i < kShedReasonCount; ++i) {
      shedCtr_[i] = &telemetry_->counter(
          "edgesim_shed_total",
          {{"reason", shedReasonName(static_cast<ShedReason>(i))}});
    }
    brownoutGauge_ = &telemetry_->gauge("edgesim_brownout_active");
    brownoutEnterCtr_ = &telemetry_->counter(
        "edgesim_brownout_transitions_total", {{"to", "active"}});
    brownoutExitCtr_ = &telemetry_->counter(
        "edgesim_brownout_transitions_total", {{"to", "inactive"}});
    brownoutRedirects_ =
        &telemetry_->counter("edgesim_brownout_redirects_total");
    deployTokenGauge_ = &telemetry_->gauge("edgesim_deploy_tokens_in_use");
  }
}

void OverloadGovernor::noteShed(ShedReason reason) {
  const auto index = static_cast<std::size_t>(reason);
  shed_[index].fetch_add(1, std::memory_order_relaxed);
  if (shedCtr_[index] != nullptr) shedCtr_[index]->add();
}

std::uint64_t OverloadGovernor::shedCount() const {
  std::uint64_t total = 0;
  for (const auto& counter : shed_) {
    total += counter.load(std::memory_order_relaxed);
  }
  return total;
}

CircuitBreaker& OverloadGovernor::breaker(const std::string& cluster) {
  auto it = breakers_.find(cluster);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(cluster, std::make_unique<CircuitBreaker>(
                                   cluster, options_.breaker, telemetry_))
             .first;
  }
  return *it->second;
}

bool OverloadGovernor::clusterAllowed(const std::string& cluster,
                                      SimTime now) {
  if (!options_.breakerEnabled) return true;
  return breaker(cluster).allow(now);
}

bool OverloadGovernor::tryAcquireDeployToken(const std::string& cluster) {
  if (options_.maxDeploysPerCluster <= 0) return true;
  int& inUse = deployTokens_[cluster];
  if (inUse >= options_.maxDeploysPerCluster) return false;
  ++inUse;
  if (deployTokenGauge_ != nullptr) deployTokenGauge_->add(1);
  return true;
}

void OverloadGovernor::releaseDeployToken(const std::string& cluster) {
  if (options_.maxDeploysPerCluster <= 0) return;
  int& inUse = deployTokens_[cluster];
  ES_ASSERT_MSG(inUse > 0, "deploy token released without acquire");
  --inUse;
  if (deployTokenGauge_ != nullptr) deployTokenGauge_->add(-1);
}

int OverloadGovernor::deployTokensInUse(const std::string& cluster) const {
  const auto it = deployTokens_.find(cluster);
  return it == deployTokens_.end() ? 0 : it->second;
}

bool OverloadGovernor::brownoutActive(SimTime now) {
  if (options_.brownoutShedThreshold == 0) return false;
  const std::uint64_t total = shedCount();
  // Roll the rolling window forward; remember the last instant the shed
  // rate was still over the threshold so the dwell extends under sustained
  // pressure instead of flapping.
  if (now - windowStart_ >= options_.brownoutWindow) {
    windowStart_ = now;
    shedAtWindowStart_ = total;
  }
  const std::uint64_t inWindow = total - shedAtWindowStart_;
  const bool over = inWindow >= options_.brownoutShedThreshold;
  if (over) brownoutLastOver_ = now;
  if (!brownout_ && over) {
    brownout_ = true;
    ++brownoutEntries_;
    if (brownoutGauge_ != nullptr) brownoutGauge_->set(1);
    if (brownoutEnterCtr_ != nullptr) brownoutEnterCtr_->add();
    ES_WARN("overload", "BROWNOUT at t=%.3fs: %llu sheds within %.2fs "
            "(threshold %llu); forcing without-waiting redirects",
            now.toSeconds(), static_cast<unsigned long long>(inWindow),
            options_.brownoutWindow.toSeconds(),
            static_cast<unsigned long long>(options_.brownoutShedThreshold));
  } else if (brownout_ && !over &&
             now - brownoutLastOver_ >= options_.brownoutMinDwell) {
    brownout_ = false;
    if (brownoutGauge_ != nullptr) brownoutGauge_->set(0);
    if (brownoutExitCtr_ != nullptr) brownoutExitCtr_->add();
    ES_INFO("overload", "brownout cleared at t=%.3fs", now.toSeconds());
  }
  return brownout_;
}

}  // namespace edgesim::overload
