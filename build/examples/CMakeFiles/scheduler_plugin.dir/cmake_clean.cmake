file(REMOVE_RECURSE
  "CMakeFiles/scheduler_plugin.dir/scheduler_plugin.cpp.o"
  "CMakeFiles/scheduler_plugin.dir/scheduler_plugin.cpp.o.d"
  "scheduler_plugin"
  "scheduler_plugin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
