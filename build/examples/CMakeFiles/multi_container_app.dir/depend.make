# Empty dependencies file for multi_container_app.
# This may be replaced when dependencies are built.
