file(REMOVE_RECURSE
  "CMakeFiles/multi_container_app.dir/multi_container_app.cpp.o"
  "CMakeFiles/multi_container_app.dir/multi_container_app.cpp.o.d"
  "multi_container_app"
  "multi_container_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_container_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
