# Empty dependencies file for image_classification_edge.
# This may be replaced when dependencies are built.
