file(REMOVE_RECURSE
  "CMakeFiles/image_classification_edge.dir/image_classification_edge.cpp.o"
  "CMakeFiles/image_classification_edge.dir/image_classification_edge.cpp.o.d"
  "image_classification_edge"
  "image_classification_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_classification_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
