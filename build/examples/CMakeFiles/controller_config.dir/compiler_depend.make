# Empty compiler generated dependencies file for controller_config.
# This may be replaced when dependencies are built.
