file(REMOVE_RECURSE
  "CMakeFiles/controller_config.dir/controller_config.cpp.o"
  "CMakeFiles/controller_config.dir/controller_config.cpp.o.d"
  "controller_config"
  "controller_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
