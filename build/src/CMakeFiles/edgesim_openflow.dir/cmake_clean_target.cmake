file(REMOVE_RECURSE
  "libedgesim_openflow.a"
)
