# Empty compiler generated dependencies file for edgesim_openflow.
# This may be replaced when dependencies are built.
