file(REMOVE_RECURSE
  "CMakeFiles/edgesim_openflow.dir/openflow/action.cpp.o"
  "CMakeFiles/edgesim_openflow.dir/openflow/action.cpp.o.d"
  "CMakeFiles/edgesim_openflow.dir/openflow/flow_table.cpp.o"
  "CMakeFiles/edgesim_openflow.dir/openflow/flow_table.cpp.o.d"
  "CMakeFiles/edgesim_openflow.dir/openflow/match.cpp.o"
  "CMakeFiles/edgesim_openflow.dir/openflow/match.cpp.o.d"
  "CMakeFiles/edgesim_openflow.dir/openflow/switch.cpp.o"
  "CMakeFiles/edgesim_openflow.dir/openflow/switch.cpp.o.d"
  "libedgesim_openflow.a"
  "libedgesim_openflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_openflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
