file(REMOVE_RECURSE
  "CMakeFiles/edgesim_workload.dir/workload/bigflows.cpp.o"
  "CMakeFiles/edgesim_workload.dir/workload/bigflows.cpp.o.d"
  "CMakeFiles/edgesim_workload.dir/workload/trace.cpp.o"
  "CMakeFiles/edgesim_workload.dir/workload/trace.cpp.o.d"
  "CMakeFiles/edgesim_workload.dir/workload/trace_io.cpp.o"
  "CMakeFiles/edgesim_workload.dir/workload/trace_io.cpp.o.d"
  "libedgesim_workload.a"
  "libedgesim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
