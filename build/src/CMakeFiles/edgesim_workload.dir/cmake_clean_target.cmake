file(REMOVE_RECURSE
  "libedgesim_workload.a"
)
