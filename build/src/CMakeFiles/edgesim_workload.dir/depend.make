# Empty dependencies file for edgesim_workload.
# This may be replaced when dependencies are built.
