file(REMOVE_RECURSE
  "libedgesim_metrics.a"
)
