# Empty dependencies file for edgesim_metrics.
# This may be replaced when dependencies are built.
