file(REMOVE_RECURSE
  "CMakeFiles/edgesim_metrics.dir/metrics/recorder.cpp.o"
  "CMakeFiles/edgesim_metrics.dir/metrics/recorder.cpp.o.d"
  "libedgesim_metrics.a"
  "libedgesim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
