file(REMOVE_RECURSE
  "libedgesim_sim.a"
)
