file(REMOVE_RECURSE
  "CMakeFiles/edgesim_sim.dir/sim/simulation.cpp.o"
  "CMakeFiles/edgesim_sim.dir/sim/simulation.cpp.o.d"
  "CMakeFiles/edgesim_sim.dir/sim/time.cpp.o"
  "CMakeFiles/edgesim_sim.dir/sim/time.cpp.o.d"
  "libedgesim_sim.a"
  "libedgesim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
