# Empty dependencies file for edgesim_sim.
# This may be replaced when dependencies are built.
