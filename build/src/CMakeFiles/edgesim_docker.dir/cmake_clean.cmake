file(REMOVE_RECURSE
  "CMakeFiles/edgesim_docker.dir/docker/engine.cpp.o"
  "CMakeFiles/edgesim_docker.dir/docker/engine.cpp.o.d"
  "libedgesim_docker.a"
  "libedgesim_docker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_docker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
