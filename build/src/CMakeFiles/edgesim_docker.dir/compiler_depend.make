# Empty compiler generated dependencies file for edgesim_docker.
# This may be replaced when dependencies are built.
