file(REMOVE_RECURSE
  "libedgesim_docker.a"
)
