# Empty dependencies file for edgesim_serverless.
# This may be replaced when dependencies are built.
