file(REMOVE_RECURSE
  "CMakeFiles/edgesim_serverless.dir/serverless/faas_runtime.cpp.o"
  "CMakeFiles/edgesim_serverless.dir/serverless/faas_runtime.cpp.o.d"
  "libedgesim_serverless.a"
  "libedgesim_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
