file(REMOVE_RECURSE
  "libedgesim_serverless.a"
)
