# Empty dependencies file for edgesim_core.
# This may be replaced when dependencies are built.
