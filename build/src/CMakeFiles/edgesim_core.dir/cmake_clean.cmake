file(REMOVE_RECURSE
  "CMakeFiles/edgesim_core.dir/core/annotator.cpp.o"
  "CMakeFiles/edgesim_core.dir/core/annotator.cpp.o.d"
  "CMakeFiles/edgesim_core.dir/core/cluster_adapter.cpp.o"
  "CMakeFiles/edgesim_core.dir/core/cluster_adapter.cpp.o.d"
  "CMakeFiles/edgesim_core.dir/core/controller.cpp.o"
  "CMakeFiles/edgesim_core.dir/core/controller.cpp.o.d"
  "CMakeFiles/edgesim_core.dir/core/dispatcher.cpp.o"
  "CMakeFiles/edgesim_core.dir/core/dispatcher.cpp.o.d"
  "CMakeFiles/edgesim_core.dir/core/flow_memory.cpp.o"
  "CMakeFiles/edgesim_core.dir/core/flow_memory.cpp.o.d"
  "CMakeFiles/edgesim_core.dir/core/scheduler.cpp.o"
  "CMakeFiles/edgesim_core.dir/core/scheduler.cpp.o.d"
  "CMakeFiles/edgesim_core.dir/core/serverless_adapter.cpp.o"
  "CMakeFiles/edgesim_core.dir/core/serverless_adapter.cpp.o.d"
  "CMakeFiles/edgesim_core.dir/core/service_catalog.cpp.o"
  "CMakeFiles/edgesim_core.dir/core/service_catalog.cpp.o.d"
  "CMakeFiles/edgesim_core.dir/core/service_model.cpp.o"
  "CMakeFiles/edgesim_core.dir/core/service_model.cpp.o.d"
  "CMakeFiles/edgesim_core.dir/core/testbed.cpp.o"
  "CMakeFiles/edgesim_core.dir/core/testbed.cpp.o.d"
  "libedgesim_core.a"
  "libedgesim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
