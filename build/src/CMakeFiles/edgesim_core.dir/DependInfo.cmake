
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/annotator.cpp" "src/CMakeFiles/edgesim_core.dir/core/annotator.cpp.o" "gcc" "src/CMakeFiles/edgesim_core.dir/core/annotator.cpp.o.d"
  "/root/repo/src/core/cluster_adapter.cpp" "src/CMakeFiles/edgesim_core.dir/core/cluster_adapter.cpp.o" "gcc" "src/CMakeFiles/edgesim_core.dir/core/cluster_adapter.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/CMakeFiles/edgesim_core.dir/core/controller.cpp.o" "gcc" "src/CMakeFiles/edgesim_core.dir/core/controller.cpp.o.d"
  "/root/repo/src/core/dispatcher.cpp" "src/CMakeFiles/edgesim_core.dir/core/dispatcher.cpp.o" "gcc" "src/CMakeFiles/edgesim_core.dir/core/dispatcher.cpp.o.d"
  "/root/repo/src/core/flow_memory.cpp" "src/CMakeFiles/edgesim_core.dir/core/flow_memory.cpp.o" "gcc" "src/CMakeFiles/edgesim_core.dir/core/flow_memory.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/edgesim_core.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/edgesim_core.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/core/serverless_adapter.cpp" "src/CMakeFiles/edgesim_core.dir/core/serverless_adapter.cpp.o" "gcc" "src/CMakeFiles/edgesim_core.dir/core/serverless_adapter.cpp.o.d"
  "/root/repo/src/core/service_catalog.cpp" "src/CMakeFiles/edgesim_core.dir/core/service_catalog.cpp.o" "gcc" "src/CMakeFiles/edgesim_core.dir/core/service_catalog.cpp.o.d"
  "/root/repo/src/core/service_model.cpp" "src/CMakeFiles/edgesim_core.dir/core/service_model.cpp.o" "gcc" "src/CMakeFiles/edgesim_core.dir/core/service_model.cpp.o.d"
  "/root/repo/src/core/testbed.cpp" "src/CMakeFiles/edgesim_core.dir/core/testbed.cpp.o" "gcc" "src/CMakeFiles/edgesim_core.dir/core/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgesim_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_docker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_yamlite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
