file(REMOVE_RECURSE
  "libedgesim_core.a"
)
