file(REMOVE_RECURSE
  "CMakeFiles/edgesim_net.dir/net/addr.cpp.o"
  "CMakeFiles/edgesim_net.dir/net/addr.cpp.o.d"
  "CMakeFiles/edgesim_net.dir/net/host.cpp.o"
  "CMakeFiles/edgesim_net.dir/net/host.cpp.o.d"
  "CMakeFiles/edgesim_net.dir/net/network.cpp.o"
  "CMakeFiles/edgesim_net.dir/net/network.cpp.o.d"
  "CMakeFiles/edgesim_net.dir/net/packet.cpp.o"
  "CMakeFiles/edgesim_net.dir/net/packet.cpp.o.d"
  "libedgesim_net.a"
  "libedgesim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
