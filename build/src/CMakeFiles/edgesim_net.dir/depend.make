# Empty dependencies file for edgesim_net.
# This may be replaced when dependencies are built.
