file(REMOVE_RECURSE
  "libedgesim_net.a"
)
