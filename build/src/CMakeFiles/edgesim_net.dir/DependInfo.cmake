
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/addr.cpp" "src/CMakeFiles/edgesim_net.dir/net/addr.cpp.o" "gcc" "src/CMakeFiles/edgesim_net.dir/net/addr.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/CMakeFiles/edgesim_net.dir/net/host.cpp.o" "gcc" "src/CMakeFiles/edgesim_net.dir/net/host.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/edgesim_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/edgesim_net.dir/net/network.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/edgesim_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/edgesim_net.dir/net/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
