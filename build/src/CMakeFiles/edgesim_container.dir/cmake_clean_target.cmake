file(REMOVE_RECURSE
  "libedgesim_container.a"
)
