file(REMOVE_RECURSE
  "CMakeFiles/edgesim_container.dir/container/image.cpp.o"
  "CMakeFiles/edgesim_container.dir/container/image.cpp.o.d"
  "CMakeFiles/edgesim_container.dir/container/layer_store.cpp.o"
  "CMakeFiles/edgesim_container.dir/container/layer_store.cpp.o.d"
  "CMakeFiles/edgesim_container.dir/container/puller.cpp.o"
  "CMakeFiles/edgesim_container.dir/container/puller.cpp.o.d"
  "CMakeFiles/edgesim_container.dir/container/registry.cpp.o"
  "CMakeFiles/edgesim_container.dir/container/registry.cpp.o.d"
  "CMakeFiles/edgesim_container.dir/container/runtime.cpp.o"
  "CMakeFiles/edgesim_container.dir/container/runtime.cpp.o.d"
  "libedgesim_container.a"
  "libedgesim_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
