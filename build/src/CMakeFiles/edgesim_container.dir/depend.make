# Empty dependencies file for edgesim_container.
# This may be replaced when dependencies are built.
