file(REMOVE_RECURSE
  "libedgesim_yamlite.a"
)
