# Empty dependencies file for edgesim_yamlite.
# This may be replaced when dependencies are built.
