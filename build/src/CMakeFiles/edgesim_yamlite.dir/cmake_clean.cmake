file(REMOVE_RECURSE
  "CMakeFiles/edgesim_yamlite.dir/yamlite/node.cpp.o"
  "CMakeFiles/edgesim_yamlite.dir/yamlite/node.cpp.o.d"
  "CMakeFiles/edgesim_yamlite.dir/yamlite/parse.cpp.o"
  "CMakeFiles/edgesim_yamlite.dir/yamlite/parse.cpp.o.d"
  "libedgesim_yamlite.a"
  "libedgesim_yamlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_yamlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
