file(REMOVE_RECURSE
  "libedgesim_k8s.a"
)
