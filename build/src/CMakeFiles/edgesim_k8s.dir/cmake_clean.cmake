file(REMOVE_RECURSE
  "CMakeFiles/edgesim_k8s.dir/k8s/autoscaler.cpp.o"
  "CMakeFiles/edgesim_k8s.dir/k8s/autoscaler.cpp.o.d"
  "CMakeFiles/edgesim_k8s.dir/k8s/cluster.cpp.o"
  "CMakeFiles/edgesim_k8s.dir/k8s/cluster.cpp.o.d"
  "CMakeFiles/edgesim_k8s.dir/k8s/controllers.cpp.o"
  "CMakeFiles/edgesim_k8s.dir/k8s/controllers.cpp.o.d"
  "CMakeFiles/edgesim_k8s.dir/k8s/kubelet.cpp.o"
  "CMakeFiles/edgesim_k8s.dir/k8s/kubelet.cpp.o.d"
  "CMakeFiles/edgesim_k8s.dir/k8s/objects.cpp.o"
  "CMakeFiles/edgesim_k8s.dir/k8s/objects.cpp.o.d"
  "CMakeFiles/edgesim_k8s.dir/k8s/scheduler.cpp.o"
  "CMakeFiles/edgesim_k8s.dir/k8s/scheduler.cpp.o.d"
  "libedgesim_k8s.a"
  "libedgesim_k8s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
