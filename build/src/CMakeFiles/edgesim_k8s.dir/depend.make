# Empty dependencies file for edgesim_k8s.
# This may be replaced when dependencies are built.
