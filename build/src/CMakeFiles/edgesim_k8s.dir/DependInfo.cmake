
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/k8s/autoscaler.cpp" "src/CMakeFiles/edgesim_k8s.dir/k8s/autoscaler.cpp.o" "gcc" "src/CMakeFiles/edgesim_k8s.dir/k8s/autoscaler.cpp.o.d"
  "/root/repo/src/k8s/cluster.cpp" "src/CMakeFiles/edgesim_k8s.dir/k8s/cluster.cpp.o" "gcc" "src/CMakeFiles/edgesim_k8s.dir/k8s/cluster.cpp.o.d"
  "/root/repo/src/k8s/controllers.cpp" "src/CMakeFiles/edgesim_k8s.dir/k8s/controllers.cpp.o" "gcc" "src/CMakeFiles/edgesim_k8s.dir/k8s/controllers.cpp.o.d"
  "/root/repo/src/k8s/kubelet.cpp" "src/CMakeFiles/edgesim_k8s.dir/k8s/kubelet.cpp.o" "gcc" "src/CMakeFiles/edgesim_k8s.dir/k8s/kubelet.cpp.o.d"
  "/root/repo/src/k8s/objects.cpp" "src/CMakeFiles/edgesim_k8s.dir/k8s/objects.cpp.o" "gcc" "src/CMakeFiles/edgesim_k8s.dir/k8s/objects.cpp.o.d"
  "/root/repo/src/k8s/scheduler.cpp" "src/CMakeFiles/edgesim_k8s.dir/k8s/scheduler.cpp.o" "gcc" "src/CMakeFiles/edgesim_k8s.dir/k8s/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgesim_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_yamlite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
