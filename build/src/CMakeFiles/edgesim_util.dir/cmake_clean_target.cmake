file(REMOVE_RECURSE
  "libedgesim_util.a"
)
