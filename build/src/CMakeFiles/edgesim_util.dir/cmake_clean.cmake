file(REMOVE_RECURSE
  "CMakeFiles/edgesim_util.dir/util/config.cpp.o"
  "CMakeFiles/edgesim_util.dir/util/config.cpp.o.d"
  "CMakeFiles/edgesim_util.dir/util/log.cpp.o"
  "CMakeFiles/edgesim_util.dir/util/log.cpp.o.d"
  "CMakeFiles/edgesim_util.dir/util/result.cpp.o"
  "CMakeFiles/edgesim_util.dir/util/result.cpp.o.d"
  "CMakeFiles/edgesim_util.dir/util/rng.cpp.o"
  "CMakeFiles/edgesim_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/edgesim_util.dir/util/stats.cpp.o"
  "CMakeFiles/edgesim_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/edgesim_util.dir/util/strings.cpp.o"
  "CMakeFiles/edgesim_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/edgesim_util.dir/util/table.cpp.o"
  "CMakeFiles/edgesim_util.dir/util/table.cpp.o.d"
  "CMakeFiles/edgesim_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/edgesim_util.dir/util/thread_pool.cpp.o.d"
  "CMakeFiles/edgesim_util.dir/util/units.cpp.o"
  "CMakeFiles/edgesim_util.dir/util/units.cpp.o.d"
  "libedgesim_util.a"
  "libedgesim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
