# Empty dependencies file for edgesim_util.
# This may be replaced when dependencies are built.
