
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/k8s_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgesim_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_yamlite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
