file(REMOVE_RECURSE
  "CMakeFiles/docker_test.dir/docker_test.cpp.o"
  "CMakeFiles/docker_test.dir/docker_test.cpp.o.d"
  "docker_test"
  "docker_test.pdb"
  "docker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
