# Empty compiler generated dependencies file for docker_test.
# This may be replaced when dependencies are built.
