# Empty dependencies file for bench_ondemand_modes.
# This may be replaced when dependencies are built.
