file(REMOVE_RECURSE
  "CMakeFiles/bench_ondemand_modes.dir/bench_ondemand_modes.cpp.o"
  "CMakeFiles/bench_ondemand_modes.dir/bench_ondemand_modes.cpp.o.d"
  "bench_ondemand_modes"
  "bench_ondemand_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ondemand_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
