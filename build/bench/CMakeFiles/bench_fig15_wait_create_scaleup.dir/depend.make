# Empty dependencies file for bench_fig15_wait_create_scaleup.
# This may be replaced when dependencies are built.
