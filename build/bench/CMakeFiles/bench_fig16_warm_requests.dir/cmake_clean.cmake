file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_warm_requests.dir/bench_fig16_warm_requests.cpp.o"
  "CMakeFiles/bench_fig16_warm_requests.dir/bench_fig16_warm_requests.cpp.o.d"
  "bench_fig16_warm_requests"
  "bench_fig16_warm_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_warm_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
