# Empty compiler generated dependencies file for bench_fig16_warm_requests.
# This may be replaced when dependencies are built.
