# Empty dependencies file for bench_proactive_prediction.
# This may be replaced when dependencies are built.
