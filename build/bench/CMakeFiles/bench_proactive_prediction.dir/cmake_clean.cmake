file(REMOVE_RECURSE
  "CMakeFiles/bench_proactive_prediction.dir/bench_proactive_prediction.cpp.o"
  "CMakeFiles/bench_proactive_prediction.dir/bench_proactive_prediction.cpp.o.d"
  "bench_proactive_prediction"
  "bench_proactive_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proactive_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
