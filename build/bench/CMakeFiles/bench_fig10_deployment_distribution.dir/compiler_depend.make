# Empty compiler generated dependencies file for bench_fig10_deployment_distribution.
# This may be replaced when dependencies are built.
