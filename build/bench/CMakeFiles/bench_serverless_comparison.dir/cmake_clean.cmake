file(REMOVE_RECURSE
  "CMakeFiles/bench_serverless_comparison.dir/bench_serverless_comparison.cpp.o"
  "CMakeFiles/bench_serverless_comparison.dir/bench_serverless_comparison.cpp.o.d"
  "bench_serverless_comparison"
  "bench_serverless_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serverless_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
