# Empty dependencies file for bench_fig12_create_scaleup.
# This may be replaced when dependencies are built.
