file(REMOVE_RECURSE
  "CMakeFiles/bench_flowmemory_ablation.dir/bench_flowmemory_ablation.cpp.o"
  "CMakeFiles/bench_flowmemory_ablation.dir/bench_flowmemory_ablation.cpp.o.d"
  "bench_flowmemory_ablation"
  "bench_flowmemory_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flowmemory_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
