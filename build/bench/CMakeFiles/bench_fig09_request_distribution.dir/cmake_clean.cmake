file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_request_distribution.dir/bench_fig09_request_distribution.cpp.o"
  "CMakeFiles/bench_fig09_request_distribution.dir/bench_fig09_request_distribution.cpp.o.d"
  "bench_fig09_request_distribution"
  "bench_fig09_request_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_request_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
