
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_services.cpp" "bench/CMakeFiles/bench_table1_services.dir/bench_table1_services.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_services.dir/bench_table1_services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgesim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_docker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_yamlite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
