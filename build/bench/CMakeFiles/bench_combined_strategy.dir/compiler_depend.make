# Empty compiler generated dependencies file for bench_combined_strategy.
# This may be replaced when dependencies are built.
