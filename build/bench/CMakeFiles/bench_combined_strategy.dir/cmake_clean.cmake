file(REMOVE_RECURSE
  "CMakeFiles/bench_combined_strategy.dir/bench_combined_strategy.cpp.o"
  "CMakeFiles/bench_combined_strategy.dir/bench_combined_strategy.cpp.o.d"
  "bench_combined_strategy"
  "bench_combined_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_combined_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
