file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_pull.dir/bench_fig13_pull.cpp.o"
  "CMakeFiles/bench_fig13_pull.dir/bench_fig13_pull.cpp.o.d"
  "bench_fig13_pull"
  "bench_fig13_pull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
