// Overload-governor suite: bounded admission, deadline budgets, deploy
// tokens, per-cluster circuit breakers and brownout.
//
// Part of the TSan `concurrency` label: the LaneExecutor shed storms
// hammer bounded admission from many posting threads while workers run,
// so any unsynchronized access in the shed path (eviction under the
// worker lock, completeShed after it) is a TSan race, and the functional
// assertions pin the accounting invariant the controller depends on:
//
//   tasksPosted == tasksExecuted + tasksShed          (LaneExecutor)
//   submitted   == resolved + failed + shed           (EdgeController)
//
// Breaker / governor / budget tests are deterministic sim-thread checks of
// the state machine: closed -> open on failure ratio or latency quantile,
// open -> half-open after cooldown, probe bookkeeping (including
// cancelProbe, the deploy-cap interaction), deploy-token caps refusing
// with kResourceExhausted and degrading to the cloud, budget expiry
// answering a shed degraded redirect while the deployment continues, and
// brownout entry/dwell/exit.  With the governor disabled (the default)
// nothing is constructed -- the parity test pins that.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/testbed.hpp"
#include "fault/fault_plan.hpp"
#include "overload/circuit_breaker.hpp"
#include "overload/governor.hpp"
#include "util/config.hpp"
#include "util/lane_executor.hpp"

namespace edgesim {
namespace {

using namespace timeliterals;
using core::ClusterMode;
using core::Redirect;
using core::Testbed;
using core::TestbedOptions;
using overload::BreakerOptions;
using overload::BreakerState;
using overload::CircuitBreaker;
using overload::OverloadGovernor;
using overload::OverloadOptions;
using overload::ShedReason;

Ipv4 clientIp(int i) {
  return Ipv4(10, 0, static_cast<std::uint8_t>(2 + i / 200),
              static_cast<std::uint8_t>(1 + i % 200));
}

// ------------------------------------------- LaneExecutor admission ----

TEST(LaneExecutorShed, UnboundedQueueNeverSheds) {
  LaneExecutor pool(2);  // legacy ctor: capacity 0
  EXPECT_EQ(pool.queueCapacity(), 0u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.post(static_cast<std::uint64_t>(i), [] {}));
  }
  pool.drain();
  EXPECT_EQ(pool.tasksExecuted(), 100u);
  EXPECT_EQ(pool.tasksShed(), 0u);
}

// Park the pool's single worker on a task that is already DEQUEUED (so it
// occupies no queue slot) and blocks until the returned promise is set.
std::promise<void> blockWorker(LaneExecutor& pool) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  std::future<void> running = started.get_future();
  pool.post(0, [opened, &started] {
    started.set_value();
    opened.wait();
  });
  running.wait();
  return gate;
}

TEST(LaneExecutorShed, RejectNewestShedsAtCapacityAndFiresOnShed) {
  LaneExecutor pool({/*workers=*/1, /*queueCapacity=*/2,
                     ShedPolicy::kRejectNewest});
  // Block the single worker so posts accumulate in its queue.
  std::promise<void> gate = blockWorker(pool);

  std::atomic<int> executed{0};
  std::atomic<int> shedCallbacks{0};
  int admitted = 0;
  int rejected = 0;
  for (int i = 0; i < 6; ++i) {
    LaneExecutor::TaskMeta meta;
    meta.onShed = [&shedCallbacks] { shedCallbacks.fetch_add(1); };
    if (pool.post(0, [&executed] { executed.fetch_add(1); }, meta)) {
      ++admitted;
    } else {
      ++rejected;
    }
  }
  // Capacity 2: the first two fit behind the gate task, the rest shed --
  // and the shed callback fires synchronously on the posting thread.
  EXPECT_EQ(admitted, 2);
  EXPECT_EQ(rejected, 4);
  EXPECT_EQ(shedCallbacks.load(), 4);

  gate.set_value();
  pool.drain();
  EXPECT_EQ(executed.load(), 2);
  EXPECT_EQ(pool.tasksShed(), 4u);
  EXPECT_EQ(pool.tasksExecuted(), 3u);  // gate + 2 admitted
  EXPECT_EQ(pool.tasksInFlight(), 0);
}

TEST(LaneExecutorShed, DeadlineAwareEvictsTheNearestSoonerDeadline) {
  LaneExecutor pool({1, 2, ShedPolicy::kDeadlineAware});
  std::promise<void> gate = blockWorker(pool);

  std::vector<int> shedOrder;
  std::atomic<int> ran{0};
  auto meta = [&shedOrder](int id, std::int64_t deadline) {
    LaneExecutor::TaskMeta m;
    m.deadlineNanos = deadline;
    m.onShed = [&shedOrder, id] { shedOrder.push_back(id); };
    return m;
  };
  auto task = [&ran] { ran.fetch_add(1); };

  EXPECT_TRUE(pool.post(0, task, meta(1, 100)));
  EXPECT_TRUE(pool.post(0, task, meta(2, 200)));
  // Queue full.  Incoming deadline 150: task 1 (deadline 100) is nearer
  // AND sooner than 150, so it is evicted and the incoming admitted.
  EXPECT_TRUE(pool.post(0, task, meta(3, 150)));
  EXPECT_EQ(shedOrder, (std::vector<int>{1}));
  // Incoming deadline 50: nearest queued deadline is 150, NOT sooner than
  // 50 -- the incoming task is rejected instead.
  EXPECT_FALSE(pool.post(0, task, meta(4, 50)));
  EXPECT_EQ(shedOrder, (std::vector<int>{1, 4}));

  gate.set_value();
  pool.drain();
  EXPECT_EQ(ran.load(), 2);  // tasks 2 and 3
  EXPECT_EQ(pool.tasksShed(), 2u);
}

TEST(LaneExecutorShed, DeadlineAwareNeverEvictsNoDeadlineTasks) {
  LaneExecutor pool({1, 2, ShedPolicy::kDeadlineAware});
  std::promise<void> gate = blockWorker(pool);

  // Two queued tasks without deadlines: an urgent incoming task cannot
  // evict them and is rejected.
  EXPECT_TRUE(pool.post(0, [] {}));
  EXPECT_TRUE(pool.post(0, [] {}));
  LaneExecutor::TaskMeta urgent;
  urgent.deadlineNanos = 1;
  EXPECT_FALSE(pool.post(0, [] {}, urgent));

  gate.set_value();
  pool.drain();
  EXPECT_EQ(pool.tasksShed(), 1u);
}

// TSan probe: many threads post into bounded queues while the workers run
// and the observer counts sheds; whatever interleaving happens the global
// accounting must balance.
class LaneShedStorm : public ::testing::TestWithParam<int> {};

TEST_P(LaneShedStorm, AccountingBalancesUnderContention) {
  const bool deadlineAware = GetParam() != 0;
  LaneExecutor pool({2, 4, deadlineAware ? ShedPolicy::kDeadlineAware
                                         : ShedPolicy::kRejectNewest});
  std::atomic<std::int64_t> observedSheds{0};
  LaneExecutor::TaskObserver observer;
  observer.onTaskShed = [&observedSheds](std::int64_t) {
    observedSheds.fetch_add(1);
  };
  pool.setTaskObserver(std::move(observer));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> shedCallbacks{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected{0};

  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        LaneExecutor::TaskMeta meta;
        meta.deadlineNanos = deadlineAware ? (t * kPerThread + i + 1) : 0;
        meta.onShed = [&shedCallbacks] { shedCallbacks.fetch_add(1); };
        if (pool.post(static_cast<std::uint64_t>(i % 8),
                      [&executed] { executed.fetch_add(1); }, meta)) {
          admitted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : posters) thread.join();
  pool.drain();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(admitted.load() + rejected.load(), kTotal);
  // Every posted task either executed or shed -- exactly once.
  EXPECT_EQ(executed.load() + shedCallbacks.load(), kTotal);
  EXPECT_EQ(pool.tasksExecuted() + pool.tasksShed(), kTotal);
  EXPECT_EQ(pool.tasksExecuted(), executed.load());
  EXPECT_EQ(pool.tasksShed(), shedCallbacks.load());
  EXPECT_EQ(observedSheds.load(),
            static_cast<std::int64_t>(pool.tasksShed()));
  EXPECT_EQ(pool.tasksInFlight(), 0);
  // Deadline-aware eviction can shed QUEUED tasks, so rejected (incoming
  // sheds) may undercount total sheds; reject-newest sheds only incoming.
  if (!deadlineAware) {
    EXPECT_EQ(pool.tasksShed(), rejected.load());
  } else {
    EXPECT_GE(pool.tasksShed(), rejected.load());
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, LaneShedStorm, ::testing::Values(0, 1));

// ----------------------------------------------- circuit breaker ----

BreakerOptions fastBreaker() {
  BreakerOptions options;
  options.window = 10_s;
  options.slices = 10;
  options.minSamples = 4;
  options.failureRatio = 0.5;
  options.openCooldown = 5_s;
  options.halfOpenProbes = 1;
  options.closeAfterProbes = 2;
  return options;
}

TEST(CircuitBreakerTest, TripsOnFailureRatioAndShortCircuits) {
  CircuitBreaker breaker("edge", fastBreaker());
  SimTime now = SimTime::seconds(1.0);
  breaker.recordSuccess(now, 0.01);
  breaker.recordSuccess(now, 0.01);
  breaker.recordFailure(now);
  EXPECT_EQ(breaker.state(now), BreakerState::kClosed);  // n=3 < minSamples
  breaker.recordFailure(now);  // ratio 2/4 >= 0.5 -> trip
  EXPECT_EQ(breaker.state(now), BreakerState::kOpen);
  EXPECT_EQ(breaker.timesOpened(), 1u);
  EXPECT_FALSE(breaker.allow(now));
  EXPECT_FALSE(breaker.allow(now));
  EXPECT_EQ(breaker.shortCircuits(), 2u);
}

TEST(CircuitBreakerTest, OutcomesExpireOutOfTheRollingWindow) {
  CircuitBreaker breaker("edge", fastBreaker());
  breaker.recordFailure(SimTime::seconds(1.0));
  breaker.recordFailure(SimTime::seconds(1.0));
  EXPECT_EQ(breaker.windowFailures(SimTime::seconds(1.0)), 2u);
  // 10 s window: by t=20 s the old failures no longer count, so two fresh
  // successes plus two fresh failures cannot reach the old ones.
  EXPECT_EQ(breaker.windowFailures(SimTime::seconds(20.0)), 0u);
  breaker.recordSuccess(SimTime::seconds(20.0), 0.01);
  breaker.recordSuccess(SimTime::seconds(20.0), 0.01);
  breaker.recordSuccess(SimTime::seconds(20.0), 0.01);
  breaker.recordFailure(SimTime::seconds(20.0));
  EXPECT_EQ(breaker.state(SimTime::seconds(20.0)), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, TripsOnLatencyQuantile) {
  BreakerOptions options = fastBreaker();
  options.latencyQuantile = 0.5;
  options.latencyThresholdSeconds = 0.1;
  CircuitBreaker breaker("edge", options);
  const SimTime now = SimTime::seconds(1.0);
  // All successes, but far over the latency threshold.
  breaker.recordSuccess(now, 1.0);
  breaker.recordSuccess(now, 1.0);
  breaker.recordSuccess(now, 1.0);
  EXPECT_EQ(breaker.state(now), BreakerState::kClosed);
  breaker.recordSuccess(now, 1.0);  // minSamples reached
  EXPECT_EQ(breaker.state(now), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, CooldownHalfOpensAndProbesCloseIt) {
  CircuitBreaker breaker("edge", fastBreaker());
  SimTime now = SimTime::seconds(1.0);
  for (int i = 0; i < 4; ++i) breaker.recordFailure(now);
  ASSERT_EQ(breaker.state(now), BreakerState::kOpen);

  now = now + 5_s;  // cooldown elapsed
  EXPECT_EQ(breaker.state(now), BreakerState::kHalfOpen);
  // One probe slot: allowed until reserved, short-circuited after.
  EXPECT_TRUE(breaker.allow(now));
  breaker.beginProbe(now);
  EXPECT_FALSE(breaker.allow(now));
  breaker.recordSuccess(now, 0.01);  // settles the probe: 1/2 successes
  EXPECT_EQ(breaker.state(now), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow(now));
  breaker.beginProbe(now);
  breaker.recordSuccess(now, 0.01);  // 2/2 -> closed, window cleared
  EXPECT_EQ(breaker.state(now), BreakerState::kClosed);
  EXPECT_EQ(breaker.windowFailures(now), 0u);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker("edge", fastBreaker());
  SimTime now = SimTime::seconds(1.0);
  for (int i = 0; i < 4; ++i) breaker.recordFailure(now);
  now = now + 5_s;
  ASSERT_EQ(breaker.state(now), BreakerState::kHalfOpen);
  breaker.beginProbe(now);
  breaker.recordFailure(now);
  EXPECT_EQ(breaker.state(now), BreakerState::kOpen);
  EXPECT_EQ(breaker.timesOpened(), 2u);
  // Cooldown restarted from the probe failure.
  EXPECT_EQ(breaker.state(now + 4_s), BreakerState::kOpen);
  EXPECT_EQ(breaker.state(now + 5_s), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, CancelProbeReleasesTheSlotWithoutJudging) {
  CircuitBreaker breaker("edge", fastBreaker());
  SimTime now = SimTime::seconds(1.0);
  for (int i = 0; i < 4; ++i) breaker.recordFailure(now);
  now = now + 5_s;
  ASSERT_EQ(breaker.state(now), BreakerState::kHalfOpen);
  breaker.beginProbe(now);
  EXPECT_FALSE(breaker.allow(now));
  // The probe never produced an outcome (deploy-token refusal): the slot
  // frees up and the breaker stays half-open -- neither closed nor
  // re-opened.
  breaker.cancelProbe(now);
  EXPECT_EQ(breaker.state(now), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow(now));
}

// ---------------------------------------------------- governor ----

OverloadOptions enabledOptions() {
  OverloadOptions options;
  options.enabled = true;
  options.requestBudget = SimTime::zero();
  return options;
}

TEST(OverloadGovernorTest, ShedAccountingByReason) {
  OverloadGovernor governor(enabledOptions());
  governor.noteShed(ShedReason::kQueueFull);
  governor.noteShed(ShedReason::kQueueFull);
  governor.noteShed(ShedReason::kBudgetExpired);
  EXPECT_EQ(governor.shedCount(ShedReason::kQueueFull), 2u);
  EXPECT_EQ(governor.shedCount(ShedReason::kBudgetExpired), 1u);
  EXPECT_EQ(governor.shedCount(ShedReason::kDeployCap), 0u);
  EXPECT_EQ(governor.shedCount(), 3u);
}

TEST(OverloadGovernorTest, DeployTokensCapPerCluster) {
  OverloadOptions options = enabledOptions();
  options.maxDeploysPerCluster = 2;
  OverloadGovernor governor(options);
  EXPECT_TRUE(governor.tryAcquireDeployToken("edge"));
  EXPECT_TRUE(governor.tryAcquireDeployToken("edge"));
  EXPECT_FALSE(governor.tryAcquireDeployToken("edge"));
  // The cap is per cluster.
  EXPECT_TRUE(governor.tryAcquireDeployToken("far-edge"));
  EXPECT_EQ(governor.deployTokensInUse("edge"), 2);
  governor.releaseDeployToken("edge");
  EXPECT_TRUE(governor.tryAcquireDeployToken("edge"));
}

TEST(OverloadGovernorTest, ZeroCapMeansUnlimitedDeploys) {
  OverloadOptions options = enabledOptions();
  options.maxDeploysPerCluster = 0;
  OverloadGovernor governor(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(governor.tryAcquireDeployToken("edge"));
  }
  EXPECT_EQ(governor.deployTokensInUse("edge"), 0);
}

TEST(OverloadGovernorTest, BrownoutEntersOnShedBurstAndDwellsOut) {
  OverloadOptions options = enabledOptions();
  options.brownoutShedThreshold = 4;
  options.brownoutWindow = 1_s;
  options.brownoutMinDwell = 5_s;
  OverloadGovernor governor(options);

  EXPECT_FALSE(governor.brownoutActive(SimTime::seconds(0.0)));
  for (int i = 0; i < 4; ++i) governor.noteShed(ShedReason::kQueueFull);
  EXPECT_TRUE(governor.brownoutActive(SimTime::seconds(0.5)));
  EXPECT_EQ(governor.brownoutEntries(), 1u);
  // No further sheds: the window rolls under the threshold, but the
  // min-dwell keeps brownout active until 5 s after the last over-window.
  EXPECT_TRUE(governor.brownoutActive(SimTime::seconds(2.0)));
  EXPECT_TRUE(governor.brownoutActive(SimTime::seconds(5.0)));
  EXPECT_FALSE(governor.brownoutActive(SimTime::seconds(5.6)));
  EXPECT_EQ(governor.brownoutEntries(), 1u);
}

TEST(OverloadGovernorTest, BreakerVetoesClusterWhenOpen) {
  OverloadOptions options = enabledOptions();
  options.breaker = fastBreaker();
  OverloadGovernor governor(options);
  const SimTime now = SimTime::seconds(1.0);
  EXPECT_TRUE(governor.clusterAllowed("edge", now));
  for (int i = 0; i < 4; ++i) governor.breaker("edge").recordFailure(now);
  EXPECT_FALSE(governor.clusterAllowed("edge", now));
  EXPECT_TRUE(governor.clusterAllowed("other", now));
}

TEST(OverloadOptionsTest, FromConfigParsesEveryKey) {
  Config config;
  config.set("overload_enabled", "true");
  config.set("overload_lane_queue_capacity", "32");
  config.set("overload_shed_policy", "deadline-aware");
  config.set("overload_request_budget_ms", "750");
  config.set("overload_max_deploys_per_cluster", "2");
  config.set("overload_breaker_enabled", "true");
  config.set("overload_breaker_window_ms", "4000");
  config.set("overload_breaker_min_samples", "6");
  config.set("overload_breaker_failure_ratio", "0.25");
  config.set("overload_breaker_latency_threshold_ms", "150");
  config.set("overload_breaker_cooldown_ms", "2500");
  config.set("overload_brownout_shed_threshold", "10");
  config.set("overload_brownout_window_ms", "500");
  config.set("overload_brownout_min_dwell_ms", "3000");

  const OverloadOptions options = OverloadOptions::fromConfig(config);
  EXPECT_TRUE(options.enabled);
  EXPECT_EQ(options.laneQueueCapacity, 32u);
  EXPECT_EQ(options.shedPolicy, "deadline-aware");
  EXPECT_EQ(options.requestBudget, SimTime::millis(750));
  EXPECT_EQ(options.maxDeploysPerCluster, 2);
  EXPECT_TRUE(options.breakerEnabled);
  EXPECT_EQ(options.breaker.window, SimTime::seconds(4.0));
  EXPECT_EQ(options.breaker.minSamples, 6u);
  EXPECT_DOUBLE_EQ(options.breaker.failureRatio, 0.25);
  EXPECT_DOUBLE_EQ(options.breaker.latencyThresholdSeconds, 0.15);
  EXPECT_EQ(options.breaker.openCooldown, SimTime::millis(2500));
  EXPECT_EQ(options.brownoutShedThreshold, 10u);
  EXPECT_EQ(options.brownoutWindow, SimTime::millis(500));
  EXPECT_EQ(options.brownoutMinDwell, SimTime::seconds(3.0));
}

// --------------------------------------- end-to-end request path ----

const Endpoint kNginxAddr{Ipv4(203, 0, 113, 10), 80};

TEST(OverloadEndToEnd, GovernorDisabledByDefaultAndNothingSheds) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.workers = 2;
  Testbed bed(options);
  EXPECT_EQ(bed.governor(), nullptr);
  EXPECT_EQ(bed.controller().workerPool()->queueCapacity(), 0u);

  bed.warmImageCache("nginx");
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(60_s);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok());
  EXPECT_EQ(bed.controller().requestsShed(), 0u);
  EXPECT_EQ(bed.controller().requestsSubmitted(),
            bed.controller().requestsResolved() +
                bed.controller().requestsFailed() +
                bed.controller().requestsShed());
}

TEST(OverloadEndToEnd, QueueFullShedAnswersDegradedCloudRedirect) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.workers = 1;
  options.controller.overload.enabled = true;
  options.controller.overload.laneQueueCapacity = 1;
  options.controller.overload.requestBudget = SimTime::zero();
  options.controller.overload.brownoutShedThreshold = 0;
  Testbed bed(options);
  bed.warmImageCache("nginx");
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  ASSERT_NE(bed.governor(), nullptr);
  EXPECT_EQ(bed.controller().workerPool()->queueCapacity(), 1u);

  core::EdgeController& controller = bed.controller();
  // Block the single worker so the next submit fills the queue and the one
  // after that must shed.
  std::promise<void> gate = blockWorker(*controller.workerPool());

  std::optional<Result<Redirect>> first;
  std::optional<Result<Redirect>> second;
  controller.submitRequest(clientIp(0), kNginxAddr,
                           [&](Result<Redirect> r) { first = std::move(r); });
  controller.submitRequest(clientIp(1), kNginxAddr,
                           [&](Result<Redirect> r) { second = std::move(r); });
  // The shed answer is synchronous on the submitting thread: an immediate
  // degraded redirect to the cloud-hosted instance, no queueing.
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(second->ok());
  EXPECT_TRUE(second->value().shed);
  EXPECT_TRUE(second->value().degraded);
  EXPECT_EQ(second->value().cluster, "cloud");
  EXPECT_EQ(bed.governor()->shedCount(ShedReason::kQueueFull), 1u);

  gate.set_value();
  Simulation& sim = bed.sim();
  int guard = 0;
  while (!first.has_value()) {
    sim.waitForExternal(std::chrono::microseconds(200));
    sim.pump(10_ms);
    ASSERT_LT(++guard, 50000) << "first request stalled";
  }
  controller.workerPool()->drain();
  sim.pump(10_ms);
  EXPECT_TRUE(first->ok());
  EXPECT_FALSE(first->value().shed);

  EXPECT_EQ(controller.requestsSubmitted(), 2u);
  EXPECT_EQ(controller.requestsResolved(), 1u);
  EXPECT_EQ(controller.requestsShed(), 1u);
  EXPECT_EQ(controller.requestsFailed(), 0u);
}

TEST(OverloadEndToEnd, ExpiredBudgetFailsFastToCloudWhileDeployContinues) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.overload.enabled = true;
  // Cold image pull takes sim-seconds; a 100 ms budget always expires.
  options.controller.overload.requestBudget = 100_ms;
  options.controller.overload.brownoutShedThreshold = 0;
  // Keep the memorized flow alive until the end-of-run assertion.
  options.controller.memoryIdleTimeout = 300_s;
  Testbed bed(options);  // no warmImageCache: the pull IS the latency
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());

  core::EdgeController& controller = bed.controller();
  std::optional<Result<Redirect>> got;
  SimTime answeredAt;
  bed.sim().scheduleAt(1_s, [&] {
    controller.submitRequest(clientIp(0), kNginxAddr, [&](Result<Redirect> r) {
      got = std::move(r);
      answeredAt = bed.sim().now();
    });
  });
  bed.sim().runUntil(120_s);

  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok());
  EXPECT_TRUE(got->value().shed);
  EXPECT_TRUE(got->value().degraded);
  EXPECT_EQ(got->value().cluster, "cloud");
  // Answered AT the budget, not after the deployment.
  EXPECT_EQ(answeredAt, SimTime::seconds(1.0) + 100_ms);
  EXPECT_EQ(bed.governor()->shedCount(ShedReason::kBudgetExpired), 1u);
  EXPECT_EQ(controller.requestsShed(), 1u);
  EXPECT_EQ(controller.requestsResolved(), 0u);
  // The deployment kept going in the background and memorized the flow for
  // the NEXT request.
  EXPECT_EQ(controller.dispatcher().deploymentsTriggered(), 1u);
  EXPECT_GE(controller.flowMemory().size(), 1u);
}

TEST(OverloadEndToEnd, DeployCapRefusalDegradesToCloudWithoutBreakerBlame) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.overload.enabled = true;
  options.controller.overload.requestBudget = SimTime::zero();
  options.controller.overload.maxDeploysPerCluster = 1;
  options.controller.overload.brownoutShedThreshold = 0;
  Testbed bed(options);
  const Endpoint addr2(Ipv4(203, 0, 113, 11), 80);
  bed.warmImageCache("nginx");
  bed.warmImageCache("asm");
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  ASSERT_TRUE(bed.registerCatalogService("asm", addr2).ok());

  core::EdgeController& controller = bed.controller();
  std::optional<Result<Redirect>> first;
  std::optional<Result<Redirect>> second;
  bed.sim().scheduleAt(1_s, [&] {
    controller.submitRequest(clientIp(0), kNginxAddr,
                             [&](Result<Redirect> r) { first = std::move(r); });
    controller.submitRequest(clientIp(1), addr2,
                             [&](Result<Redirect> r) { second = std::move(r); });
  });
  bed.sim().runUntil(120_s);

  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(first->ok());
  ASSERT_TRUE(second->ok());
  // The first deployment holds the single token; the second service's
  // deployment is refused and the request degrades to the cloud -- but it
  // is RESOLVED (degraded), not shed, and the breaker holds no grudge.
  EXPECT_FALSE(first->value().degraded);
  EXPECT_TRUE(second->value().degraded);
  EXPECT_FALSE(second->value().shed);
  EXPECT_EQ(second->value().cluster, "cloud");
  EXPECT_EQ(bed.governor()->shedCount(ShedReason::kDeployCap), 1u);
  EXPECT_EQ(controller.requestsResolved(), 2u);
  EXPECT_EQ(controller.requestsShed(), 0u);
  EXPECT_EQ(controller.requestsDegraded(), 1u);
  // Tokens drain back once the deployment settles, and docker-egs stays
  // breaker-closed (kResourceExhausted never feeds recordFailure).
  EXPECT_EQ(bed.governor()->deployTokensInUse("docker-egs"), 0);
  EXPECT_TRUE(bed.governor()->clusterAllowed("docker-egs", bed.sim().now()));
}

TEST(OverloadEndToEnd, BreakerOpensUnderInjectedFaultsAndRoutesAround) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.deployRetries = 0;
  options.controller.retryBackoff = 50_ms;
  options.controller.quarantineCooldown = SimTime::zero();  // breaker only
  options.controller.overload.enabled = true;
  options.controller.overload.requestBudget = SimTime::zero();
  options.controller.overload.brownoutShedThreshold = 0;
  options.controller.overload.breaker.window = 60_s;
  options.controller.overload.breaker.minSamples = 2;
  options.controller.overload.breaker.failureRatio = 0.5;
  options.controller.overload.breaker.openCooldown = 300_s;
  Testbed bed(options);

  fault::FaultPlan plan(7);
  fault::FaultSpec spec;
  spec.site = fault::FaultSite::kClusterRpc;
  spec.target = "docker-egs/pull";  // 100% pull failure on the edge
  plan.add(spec);
  bed.injectFaults(plan);

  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  core::EdgeController& controller = bed.controller();

  constexpr int kRequests = 4;
  std::vector<std::optional<Result<Redirect>>> got(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    bed.sim().scheduleAt(SimTime::seconds(1.0 + i * 10.0), [&, i] {
      controller.submitRequest(clientIp(i), kNginxAddr, [&, i](
                                                            Result<Redirect> r) {
        got[i] = std::move(r);
      });
    });
  }
  bed.sim().runUntil(120_s);

  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(got[i].has_value()) << "request " << i;
    ASSERT_TRUE(got[i]->ok()) << "request " << i;
    EXPECT_EQ(got[i]->value().cluster, "cloud") << "request " << i;
  }
  // The first two failed deployments feed the breaker (minSamples 2,
  // ratio 1.0) and trip it; requests 3 and 4 are then routed straight to
  // the cloud at SCHEDULING time -- the cloud is simply the best allowed
  // cluster (not a degraded fallback) and no further deployment happens.
  EXPECT_TRUE(got[0]->value().degraded);
  EXPECT_TRUE(got[1]->value().degraded);
  EXPECT_FALSE(got[2]->value().degraded);
  EXPECT_FALSE(got[3]->value().degraded);
  CircuitBreaker& breaker = bed.governor()->breaker("docker-egs");
  EXPECT_EQ(breaker.state(bed.sim().now()), BreakerState::kOpen);
  EXPECT_GE(breaker.timesOpened(), 1u);
  EXPECT_GE(breaker.shortCircuits(), 1u);
  EXPECT_EQ(controller.dispatcher().deploymentsTriggered(), 2u);
  EXPECT_EQ(controller.requestsResolved(),
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(controller.requestsShed(), 0u);
}

TEST(OverloadEndToEnd, BrownoutForcesImmediateRedirectsAfterShedBurst) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.overload.enabled = true;
  options.controller.overload.requestBudget = 50_ms;
  options.controller.overload.brownoutShedThreshold = 3;
  options.controller.overload.brownoutWindow = 10_s;
  options.controller.overload.brownoutMinDwell = 30_s;
  Testbed bed(options);  // cold pulls: every budget expires -> sheds
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  core::EdgeController& controller = bed.controller();

  // Three distinct budget-expiry sheds within the window arm brownout...
  std::atomic<int> answered{0};
  for (int i = 0; i < 3; ++i) {
    bed.sim().scheduleAt(SimTime::seconds(1.0 + i * 0.5), [&, i] {
      controller.submitRequest(clientIp(i), kNginxAddr,
                               [&](Result<Redirect>) { answered.fetch_add(1); });
    });
  }
  // ... so this cold request is answered from the cloud IMMEDIATELY (the
  // paper's "without waiting" redirect) instead of waiting out its budget.
  std::optional<Result<Redirect>> fourth;
  SimTime fourthAt;
  bed.sim().scheduleAt(SimTime::seconds(4.0), [&] {
    controller.submitRequest(clientIp(40), kNginxAddr, [&](Result<Redirect> r) {
      fourth = std::move(r);
      fourthAt = bed.sim().now();
    });
  });
  bed.sim().runUntil(120_s);

  EXPECT_EQ(answered.load(), 3);
  EXPECT_EQ(bed.governor()->brownoutEntries(), 1u);
  ASSERT_TRUE(fourth.has_value());
  ASSERT_TRUE(fourth->ok());
  EXPECT_TRUE(fourth->value().degraded);
  EXPECT_FALSE(fourth->value().shed);  // resolved, just degraded
  EXPECT_EQ(fourth->value().cluster, "cloud");
  EXPECT_EQ(fourthAt, SimTime::seconds(4.0));  // zero sim-time wait
}

}  // namespace
}  // namespace edgesim
