// Failure-path tests for the retrying, degrading deployment pipeline:
// phase retries with capped exponential backoff, the per-phase watchdog,
// cloud fallback for exhausted budgets (including coalesced waiters), and
// Global Scheduler quarantine with cooldown expiry.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/service_catalog.hpp"
#include "core/testbed.hpp"
#include "fault/fault_plan.hpp"

namespace edgesim::core {
namespace {

using namespace timeliterals;

const Endpoint kSvc{Ipv4(203, 0, 113, 10), 80};

/// Scripted adapter whose pull can fail N times, fail forever, or hang.
class FlakyAdapter final : public ClusterAdapter {
 public:
  FlakyAdapter(Simulation& sim, std::string name, int rank)
      : ClusterAdapter(std::move(name), rank), sim_(sim) {}

  bool imageCached = false;
  bool created = false;
  bool running = false;
  bool cloud = false;
  SimTime pullDelay = 100_ms;
  SimTime createDelay = 10_ms;
  SimTime scaleUpDelay = 20_ms;
  SimTime readyDelay = 10_ms;
  int failPullsRemaining = 0;  // fail this many pulls, then succeed
  bool failAllPulls = false;
  bool hangPull = false;  // pull RPC never answers
  int pullCalls = 0;
  Endpoint instance{Ipv4(10, 0, 1, 1), 30000};

  bool isCloud() const override { return cloud; }

  ClusterView view(const ServiceModel&) const override {
    ClusterView v;
    v.name = name();
    v.distanceRank = distanceRank();
    v.isCloud = cloud;
    v.imageCached = imageCached;
    v.serviceCreated = created;
    if (running) v.readyInstances.push_back(instance);
    v.freeCapacity = 10;
    return v;
  }

  std::vector<Endpoint> readyInstances(const ServiceModel&) const override {
    if (running) return {instance};
    return {};
  }

  void pullImages(const ServiceModel&, Callback cb) override {
    ++pullCalls;
    if (hangPull) return;  // the watchdog has to save us
    sim_.schedule(pullDelay, [this, cb] {
      if (failAllPulls || failPullsRemaining > 0) {
        if (failPullsRemaining > 0) --failPullsRemaining;
        cb(makeError(Errc::kUnavailable, "registry down"));
        return;
      }
      imageCached = true;
      cb(Status());
    });
  }

  void createService(const ServiceModel&, Callback cb) override {
    sim_.schedule(createDelay, [this, cb] {
      created = true;
      cb(Status());
    });
  }

  void scaleUp(const ServiceModel&, Callback cb) override {
    sim_.schedule(scaleUpDelay, [this, cb] {
      sim_.schedule(readyDelay, [this] { running = true; });
      cb(Status());
    });
  }

  void scaleDown(const ServiceModel&, Callback cb) override {
    running = false;
    sim_.schedule(10_ms, [cb] { cb(Status()); });
  }

  void removeService(const ServiceModel&, Callback cb) override {
    created = false;
    running = false;
    sim_.schedule(10_ms, [cb] { cb(Status()); });
  }

  void deleteImages(const ServiceModel&, Callback cb) override {
    imageCached = false;
    sim_.schedule(10_ms, [cb] { cb(Status()); });
  }

  void probeInstance(Endpoint probed, ProbeCallback cb) override {
    sim_.schedule(1_ms, [this, probed, cb] {
      cb(running && probed == instance);
    });
  }

 private:
  Simulation& sim_;
};

class ResilienceFixture : public ::testing::Test {
 protected:
  ResilienceFixture()
      : sim_(17),
        memory_(60_s),
        near_(sim_, "near", 0),
        cloud_(sim_, "cloud", 100) {
    cloud_.cloud = true;
    cloud_.imageCached = true;
    cloud_.created = true;
    cloud_.running = true;
    cloud_.instance = Endpoint(Ipv4(198, 51, 100, 1), 20000);

    ServiceCatalog catalog;
    const auto annotated = annotateServiceYaml(catalog.entry("nginx").yaml,
                                               kSvc, AnnotatorConfig{});
    auto model = buildServiceModel(annotated.value(), kSvc, catalog.profiles());
    model_ = std::move(model).value();
    model_.tag = "nginx";
  }

  void makeDispatcher(DispatcherOptions options) {
    scheduler_ = makeProximityScheduler();
    dispatcher_ = std::make_unique<Dispatcher>(
        sim_, memory_, *scheduler_,
        std::vector<ClusterAdapter*>{&near_, &cloud_}, &recorder_, options);
  }

  /// resolve() wrapper that parks the result in `out`.
  void resolveInto(Ipv4 client, std::optional<Result<Redirect>>& out) {
    dispatcher_->resolve(model_, client,
                         [&out](Result<Redirect> r) { out = std::move(r); });
  }

  Simulation sim_;
  FlowMemory memory_;
  FlakyAdapter near_;
  FlakyAdapter cloud_;
  metrics::Recorder recorder_;
  ServiceModel model_;
  std::unique_ptr<GlobalScheduler> scheduler_;
  std::unique_ptr<Dispatcher> dispatcher_;
};

TEST(RetryPolicy, BackoffIsCappedExponential) {
  RetryPolicy policy;
  policy.initialBackoff = 200_ms;
  policy.multiplier = 2.0;
  policy.maxBackoff = 500_ms;
  EXPECT_EQ(policy.backoff(0), 200_ms);
  EXPECT_EQ(policy.backoff(1), 400_ms);
  EXPECT_EQ(policy.backoff(2), 500_ms);  // capped
  EXPECT_EQ(policy.backoff(10), 500_ms);
}

TEST_F(ResilienceFixture, RetriedPullEventuallySucceeds) {
  DispatcherOptions options;
  options.retry.maxRetries = 3;
  options.retry.initialBackoff = 100_ms;
  makeDispatcher(options);
  near_.failPullsRemaining = 2;

  std::optional<Result<Redirect>> got;
  resolveInto(Ipv4(10, 0, 2, 1), got);
  sim_.run();

  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  EXPECT_EQ(got->value().cluster, "near");
  EXPECT_FALSE(got->value().degraded);
  EXPECT_EQ(dispatcher_->retries(), 2u);
  EXPECT_EQ(dispatcher_->fallbacks(), 0u);
  EXPECT_EQ(near_.pullCalls, 3);
  const auto* retrySeries = recorder_.series("retry");
  ASSERT_NE(retrySeries, nullptr);
  EXPECT_EQ(retrySeries->count(), 2u);
  ASSERT_NE(recorder_.series("nginx/near/retry"), nullptr);
}

TEST_F(ResilienceFixture, ExhaustedRetriesFallBackToCloud) {
  DispatcherOptions options;
  options.retry.maxRetries = 2;
  options.retry.initialBackoff = 50_ms;
  makeDispatcher(options);
  near_.failAllPulls = true;

  const Ipv4 client(10, 0, 2, 1);
  std::optional<Result<Redirect>> got;
  resolveInto(client, got);
  sim_.run();

  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  EXPECT_EQ(got->value().cluster, "cloud");
  EXPECT_EQ(got->value().instance, cloud_.instance);
  EXPECT_TRUE(got->value().degraded);
  EXPECT_EQ(dispatcher_->retries(), 2u);
  EXPECT_EQ(dispatcher_->fallbacks(), 1u);
  const auto* fallbackSeries = recorder_.series("fallback");
  ASSERT_NE(fallbackSeries, nullptr);
  EXPECT_EQ(fallbackSeries->count(), 1u);
  ASSERT_NE(recorder_.series("nginx/near/fallback"), nullptr);
  // Degraded redirects are not memorized: the next request re-tries the edge.
  EXPECT_FALSE(memory_.lookup(client, kSvc).has_value());
}

TEST_F(ResilienceFixture, CoalescedWaitersAllReceiveFallback) {
  DispatcherOptions options;
  options.retry.maxRetries = 1;
  options.retry.initialBackoff = 50_ms;
  makeDispatcher(options);
  near_.failAllPulls = true;

  std::optional<Result<Redirect>> first;
  std::optional<Result<Redirect>> second;
  resolveInto(Ipv4(10, 0, 2, 1), first);
  // Joins the same pending deployment while the first pull is in flight.
  sim_.schedule(30_ms, [&] { resolveInto(Ipv4(10, 0, 2, 2), second); });
  sim_.run();

  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  for (const auto* got : {&first, &second}) {
    ASSERT_TRUE((*got)->ok()) << (*got)->error().toString();
    EXPECT_EQ((*got)->value().cluster, "cloud");
    EXPECT_TRUE((*got)->value().degraded);
  }
  EXPECT_EQ(dispatcher_->deploymentsTriggered(), 1u);  // coalesced
  EXPECT_EQ(dispatcher_->fallbacks(), 2u);
  EXPECT_EQ(dispatcher_->pendingDeployments(), 0u);
}

TEST_F(ResilienceFixture, FallbackDisabledPropagatesError) {
  DispatcherOptions options;
  options.retry.maxRetries = 1;
  options.retry.initialBackoff = 50_ms;
  options.cloudFallback = false;
  makeDispatcher(options);
  near_.failAllPulls = true;

  std::optional<Result<Redirect>> got;
  resolveInto(Ipv4(10, 0, 2, 1), got);
  sim_.run();

  ASSERT_TRUE(got.has_value());
  ASSERT_FALSE(got->ok());
  EXPECT_EQ(got->error().code, Errc::kUnavailable);
  EXPECT_EQ(dispatcher_->fallbacks(), 0u);
}

TEST_F(ResilienceFixture, QuarantinedClusterSkippedUntilCooldownExpires) {
  DispatcherOptions options;
  options.retry.maxRetries = 1;
  options.retry.initialBackoff = 50_ms;
  options.quarantineCooldown = 30_s;
  makeDispatcher(options);
  near_.failAllPulls = true;

  // 1. Exhausted budget: degraded to the cloud, "near" quarantined.
  std::optional<Result<Redirect>> first;
  resolveInto(Ipv4(10, 0, 2, 1), first);
  sim_.run();
  ASSERT_TRUE(first.has_value() && first->ok());
  EXPECT_TRUE(first->value().degraded);
  EXPECT_EQ(dispatcher_->quarantines(), 1u);
  EXPECT_TRUE(scheduler_->quarantined("near", sim_.now()));
  const auto* quarantineSeries = recorder_.series("quarantine");
  ASSERT_NE(quarantineSeries, nullptr);
  EXPECT_EQ(quarantineSeries->count(), 1u);

  // 2. "near" heals, but while quarantined the scheduler must not pick it:
  // the request is answered by the cloud through the normal decision path.
  near_.failAllPulls = false;
  const SimTime quarantinedAt = sim_.now();
  std::optional<Result<Redirect>> second;
  resolveInto(Ipv4(10, 0, 2, 2), second);
  sim_.run();
  ASSERT_TRUE(second.has_value() && second->ok());
  EXPECT_EQ(second->value().cluster, "cloud");
  EXPECT_FALSE(second->value().degraded);
  EXPECT_EQ(near_.pullCalls, 2);  // both from the first, failed deployment

  // 3. After the cooldown the cluster is eligible again and deploys fine.
  sim_.runUntil(quarantinedAt + 31_s);
  EXPECT_FALSE(scheduler_->quarantined("near", sim_.now()));
  std::optional<Result<Redirect>> third;
  resolveInto(Ipv4(10, 0, 2, 3), third);
  sim_.run();
  ASSERT_TRUE(third.has_value() && third->ok());
  EXPECT_EQ(third->value().cluster, "near");
  EXPECT_FALSE(third->value().degraded);
}

TEST_F(ResilienceFixture, PhaseWatchdogRetriesHungPull) {
  DispatcherOptions options;
  options.phaseTimeout = 1_s;
  options.retry.maxRetries = 2;
  options.retry.initialBackoff = 100_ms;
  makeDispatcher(options);
  near_.hangPull = true;  // the pull RPC never answers

  std::optional<Result<Redirect>> got;
  resolveInto(Ipv4(10, 0, 2, 1), got);
  sim_.run();

  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  EXPECT_EQ(got->value().cluster, "cloud");
  EXPECT_TRUE(got->value().degraded);
  EXPECT_EQ(dispatcher_->retries(), 2u);
  EXPECT_EQ(near_.pullCalls, 3);
  EXPECT_EQ(dispatcher_->pendingDeployments(), 0u);
}

TEST_F(ResilienceFixture, LateCallbackFromSupersededAttemptIsDropped) {
  DispatcherOptions options;
  options.phaseTimeout = 1_s;
  options.retry.maxRetries = 1;
  options.retry.initialBackoff = 100_ms;
  makeDispatcher(options);
  near_.pullDelay = 3_s;  // slower than the watchdog: every attempt expires

  std::optional<Result<Redirect>> got;
  int callbacks = 0;
  dispatcher_->resolve(model_, Ipv4(10, 0, 2, 1), [&](Result<Redirect> r) {
    ++callbacks;
    got = std::move(r);
  });
  sim_.run();  // runs past the late pull completions at 3 s and 4.1 s

  // The hung attempts' completions arrive with a stale epoch and must be
  // ignored: exactly one resolution, no dangling deployment.
  EXPECT_EQ(callbacks, 1);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  EXPECT_TRUE(got->value().degraded);
  EXPECT_EQ(dispatcher_->retries(), 1u);
  EXPECT_EQ(dispatcher_->pendingDeployments(), 0u);
}

// ---- end-to-end: scripted fault plan against the full testbed -------------

TEST(ResilienceEndToEnd, TotalPullFaultOnEdgeDegradesRequestsToCloud) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.deployRetries = 1;
  options.controller.retryBackoff = 50_ms;
  Testbed bed(options);

  fault::FaultPlan plan(99);
  fault::FaultSpec spec;
  spec.site = fault::FaultSite::kClusterRpc;
  spec.target = "docker-egs/pull";  // 100% pull failure on the edge cluster
  plan.add(spec);
  bed.injectFaults(plan);

  const Endpoint addr{Ipv4(203, 0, 113, 10), 80};
  ASSERT_TRUE(bed.registerCatalogService("nginx", addr).ok());

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", addr, "faulted",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(60_s);

  // The client still gets an answer -- from the cloud instance.
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok());
  EXPECT_GE(bed.controller().requestsDegraded(), 1u);
  EXPECT_GE(bed.controller().dispatcher().retries(), 1u);
  EXPECT_GE(bed.controller().dispatcher().fallbacks(), 1u);
  EXPECT_GE(plan.triggerCount(), 2u);  // initial attempt + retry
  EXPECT_EQ(bed.controller().requestsFailed(), 0u);

  // The injected fault must be visible in live telemetry: the retry, the
  // cloud fallback and the quarantine all show up as nonzero counters, and
  // the degraded request is counted by outcome.
  const telemetry::TelemetrySnapshot snap =
      bed.telemetry().snapshot(bed.sim().now().toSeconds());
  EXPECT_GE(snap.counterTotal("edgesim_deploy_retries_total"), 1u);
  EXPECT_GE(snap.counterTotal("edgesim_deploy_fallbacks_total"), 1u);
  EXPECT_GE(snap.counterTotal("edgesim_deploy_quarantines_total"), 1u);
  EXPECT_GE(snap.counterValue("edgesim_requests_total",
                              {{"outcome", "degraded"}}),
            1u);
}

}  // namespace
}  // namespace edgesim::core
