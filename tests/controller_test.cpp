// Unit tests for the EdgeController: service registration through YAML,
// options/config parsing, switch attachment and background flows,
// packet-in handling (registered vs unregistered, duplicate SYNs),
// flow installation shape, FlowMemory-driven scale-down, and multi-switch
// attachment.
#include <gtest/gtest.h>

#include <optional>

#include "core/testbed.hpp"

namespace edgesim::core {
namespace {

using namespace timeliterals;

const Endpoint kNginxAddr{Ipv4(203, 0, 113, 10), 80};

TEST(ControllerOptionsTest, FromConfig) {
  const auto parsed = Config::parse(R"(
scheduler = latency-first
switch_idle_timeout_ms = 2500
memory_idle_timeout_ms = 90000
scale_down_idle = false
port_poll_interval_ms = 25
local_scheduler = my-local
)");
  ASSERT_TRUE(parsed.ok());
  const auto options = ControllerOptions::fromConfig(parsed.value());
  EXPECT_EQ(options.scheduler, "latency-first");
  EXPECT_EQ(options.switchIdleTimeout, 2500_ms);
  EXPECT_EQ(options.memoryIdleTimeout, 90_s);
  EXPECT_FALSE(options.scaleDownIdleServices);
  EXPECT_EQ(options.portPollInterval, 25_ms);
  EXPECT_EQ(options.localScheduler, "my-local");
}

TEST(ControllerOptionsTest, DefaultsSurviveEmptyConfig) {
  const auto options = ControllerOptions::fromConfig(Config());
  EXPECT_EQ(options.scheduler, "proximity");
  EXPECT_TRUE(options.scaleDownIdleServices);
}

TEST(ControllerTest, RegisterServiceRejectsDuplicatesAndBadYaml) {
  Testbed bed;
  EXPECT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  const auto duplicate = bed.registerCatalogService("asm", kNginxAddr);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.error().code, Errc::kAlreadyExists);

  const auto bad =
      bed.controller().registerService("not: a deployment\n",
                                       Endpoint(Ipv4(1, 2, 3, 4), 80), "bad");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bed.controller().serviceAt(Endpoint(Ipv4(1, 2, 3, 4), 80)),
            nullptr);
}

TEST(ControllerTest, RegistrationHostsCloudInstance) {
  Testbed bed;
  const auto registered = bed.registerCatalogService("nginx", kNginxAddr);
  ASSERT_TRUE(registered.ok());
  const auto instances =
      bed.cloudAdapter()->readyInstances(*registered.value());
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].ip, bed.cloud().ip());
}

TEST(ControllerTest, BackgroundFlowsInstalledOnAttach) {
  Testbed bed;
  bed.sim().runUntil(100_ms);
  // One low-priority reachability flow per known host (clients + EGS +
  // cloud).
  std::size_t lowPriority = 0;
  for (const auto& entry : bed.ovs().table().entries()) {
    if (entry.priority == 1) ++lowPriority;
  }
  EXPECT_EQ(lowPriority, bed.clientCount() + 2);
}

TEST(ControllerTest, RedirectInstallsForwardAndReverseFlows) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");
  bed.requestCatalog(0, "nginx", kNginxAddr, "t");
  bed.sim().runUntil(5_s);

  bool sawForward = false;
  bool sawReverse = false;
  for (const auto& entry : bed.ovs().table().entries()) {
    if (entry.priority != 100) continue;
    if (entry.match.ipDst == kNginxAddr.ip && entry.match.tcpDst == 80 &&
        entry.match.ipSrc == bed.client(0).ip()) {
      sawForward = true;
      EXPECT_TRUE(entry.notifyOnRemoval);
      EXPECT_GT(entry.idleTimeout, SimTime::zero());
    }
    if (entry.match.ipDst == bed.client(0).ip() &&
        entry.match.ipSrc == bed.egs().ip()) {
      sawReverse = true;
    }
  }
  EXPECT_TRUE(sawForward);
  EXPECT_TRUE(sawReverse);
  // FlowMemory mirrors the installed flow.
  EXPECT_TRUE(bed.controller()
                  .flowMemory()
                  .lookup(bed.client(0).ip(), kNginxAddr)
                  .has_value());
}

TEST(ControllerTest, DuplicateSynsProduceOneResolution) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  // Slow down the deployment so the client retransmits its SYN into the
  // pending window: use the UNCACHED path (pull takes seconds).
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(30_s);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  // SYN retransmissions happened during the multi-second pull...
  EXPECT_GE(got->value().timings.synRetransmits, 1);
  // ...but only one deployment and one resolution resulted.
  EXPECT_EQ(bed.controller().dispatcher().deploymentsTriggered(), 1u);
  EXPECT_EQ(bed.controller().requestsResolved(), 1u);
}

TEST(ControllerTest, KnownHostRoutedByBackgroundFlowWithoutController) {
  // Unregistered traffic to a *known* host rides the low-priority
  // reachability flows; the controller never sees a packet-in.
  Testbed bed;
  bed.cloud().listen(9000, [](const HttpRequest&, HttpRespond respond) {
    respond(HttpResponse{});
  });
  std::optional<Result<HttpExchange>> got;
  bed.request(0, Endpoint(bed.cloud().ip(), 9000), "t", HttpMethod::kGet,
              Bytes{0}, [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(5_s);
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_EQ(bed.controller().packetInCount(), 0u);
}

TEST(ControllerTest, UnknownDestinationGetsUplinkFlow) {
  // Traffic to an IP with no background flow table-misses; the controller
  // installs a coarse ipDst flow toward the uplink and releases the packet.
  Testbed bed;
  const Endpoint unknown(Ipv4(8, 8, 8, 8), 53);
  bed.request(0, unknown, "t");
  bed.sim().runUntil(3_s);
  EXPECT_GE(bed.controller().packetInCount(), 1u);
  bool sawCoarse = false;
  for (const auto& entry : bed.ovs().table().entries()) {
    if (entry.priority == 10 && entry.match.ipDst == unknown.ip &&
        !entry.match.tcpDst.has_value()) {
      sawCoarse = true;
    }
  }
  EXPECT_TRUE(sawCoarse);
}

TEST(ControllerTest, ScaleDownCountsAndMemoryEmpties) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.memoryIdleTimeout = 2_s;
  options.controller.switchIdleTimeout = 1_s;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");
  bed.requestCatalog(0, "nginx", kNginxAddr, "t");
  bed.sim().runUntil(15_s);
  EXPECT_EQ(bed.controller().scaleDowns(), 1u);
  EXPECT_EQ(bed.controller().flowMemory().size(), 0u);
  // Switch flows also idled out.
  for (const auto& entry : bed.ovs().table().entries()) {
    EXPECT_NE(entry.priority, 100);
  }
}

TEST(ControllerTest, ScaleDownDisabledKeepsInstance) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.memoryIdleTimeout = 2_s;
  options.controller.scaleDownIdleServices = false;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");
  bed.requestCatalog(0, "nginx", kNginxAddr, "t");
  bed.sim().runUntil(15_s);
  EXPECT_EQ(bed.controller().scaleDowns(), 0u);
  const ServiceModel* model = bed.controller().serviceAt(kNginxAddr);
  EXPECT_EQ(bed.dockerAdapter()->readyInstances(*model).size(), 1u);
}

TEST(ControllerTest, SharedInstanceNotScaledDownWhileOtherClientActive) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.memoryIdleTimeout = 4_s;
  options.controller.switchIdleTimeout = 1_s;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  // Client 0 hits once; client 1 keeps the service busy every second.
  bed.requestCatalog(0, "nginx", kNginxAddr, "t");
  for (int i = 1; i <= 12; ++i) {
    bed.sim().scheduleAt(SimTime::seconds(i), [&bed] {
      bed.requestCatalog(1, "nginx", kNginxAddr, "busy");
    });
  }
  bed.sim().runUntil(10_s);
  // Client 0's memory expired, but client 1's flow keeps the service up.
  const ServiceModel* model = bed.controller().serviceAt(kNginxAddr);
  EXPECT_EQ(bed.dockerAdapter()->readyInstances(*model).size(), 1u);
  EXPECT_EQ(bed.controller().scaleDowns(), 0u);
}

TEST(ControllerTest, LocalSchedulerNamePropagatesToK8s) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kK8sOnly;
  options.controller.localScheduler = "edge-local";
  Testbed bed(options);
  // Register the strategy so pods actually schedule.
  bed.k8sCluster()->scheduler().registerStrategy(
      "edge-local",
      [](const k8s::Pod&, const std::vector<k8s::NodeHandle>& nodes,
         const k8s::Store<k8s::Pod>&,
         const std::map<std::string, int>&) { return nodes[0].name; });
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(30_s);
  ASSERT_TRUE(got.has_value() && got->ok());
  const auto pods = bed.k8sCluster()->podsBySelector(
      {{"edge.service", kNginxAddr.toString()}});
  ASSERT_FALSE(pods.empty());
  EXPECT_EQ(pods[0]->spec.schedulerName, "edge-local");
}

TEST(ControllerTest, RemovePhaseAfterProlongedIdle) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.memoryIdleTimeout = 2_s;
  options.controller.switchIdleTimeout = 1_s;
  options.controller.removeIdleAfter = 3_s;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");
  bed.requestCatalog(0, "nginx", kNginxAddr, "t");
  bed.sim().runUntil(20_s);
  // Scale-down (~idle 2 s) then removal (~3 s later): containers gone.
  EXPECT_EQ(bed.controller().scaleDowns(), 1u);
  EXPECT_EQ(bed.controller().removals(), 1u);
  EXPECT_TRUE(bed.dockerEngine().listContainers().empty());
  // Image still cached (Delete phase disabled by default).
  EXPECT_TRUE(bed.egsStore().hasImage(
      *container::ImageRef::parse("nginx:1.23.2")));

  // A new request goes through the FULL create + scale-up again.
  std::optional<double> again;
  bed.requestCatalog(1, "nginx", kNginxAddr, "again",
                     [&](Result<HttpExchange> r) {
                       ASSERT_TRUE(r.ok());
                       again = r.value().timings.timeTotal().toSeconds();
                     });
  bed.sim().runUntil(40_s);
  ASSERT_TRUE(again.has_value());
  EXPECT_GT(*again, 0.4);  // paid create + scale-up
}

TEST(ControllerTest, DeletePhaseDropsImagesWhenEnabled) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.memoryIdleTimeout = 2_s;
  options.controller.switchIdleTimeout = 1_s;
  options.controller.removeIdleAfter = 3_s;
  options.controller.deleteImagesOnRemove = true;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");
  bed.requestCatalog(0, "nginx", kNginxAddr, "t");
  bed.sim().runUntil(20_s);
  EXPECT_EQ(bed.controller().removals(), 1u);
  EXPECT_FALSE(bed.egsStore().hasImage(
      *container::ImageRef::parse("nginx:1.23.2")));
  // The next request must pull again.
  std::optional<double> again;
  bed.requestCatalog(1, "nginx", kNginxAddr, "again",
                     [&](Result<HttpExchange> r) {
                       ASSERT_TRUE(r.ok());
                       again = r.value().timings.timeTotal().toSeconds();
                     });
  bed.sim().runUntil(60_s);
  ASSERT_TRUE(again.has_value());
  EXPECT_GT(*again, 3.0);  // pull dominates again
}

TEST(ControllerTest, PredeployMakesFirstRequestWarm) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  std::optional<Result<Endpoint>> deployed;
  ASSERT_TRUE(bed.controller()
                  .predeploy(kNginxAddr, "docker-egs",
                             [&](Result<Endpoint> r) { deployed = std::move(r); })
                  .ok());
  bed.sim().runUntil(5_s);
  ASSERT_TRUE(deployed.has_value());
  ASSERT_TRUE(deployed->ok());

  // The predicted client's first request finds a running instance: no
  // deployment wait, just the redirect.
  std::optional<double> first;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) {
                       ASSERT_TRUE(r.ok());
                       first = r.value().timings.timeTotal().toSeconds();
                     });
  bed.sim().runUntil(10_s);
  ASSERT_TRUE(first.has_value());
  EXPECT_LT(*first, 0.05);
  EXPECT_EQ(bed.controller().dispatcher().deploymentsTriggered(), 1u);
}

TEST(ControllerTest, PredeployValidatesArguments) {
  Testbed bed;
  EXPECT_EQ(bed.controller().predeploy(kNginxAddr, "docker-egs").ok(), false);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  EXPECT_FALSE(bed.controller().predeploy(kNginxAddr, "no-such-cluster").ok());
}

TEST(ControllerTest, TwoServicesIndependentLifecycles) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  const Endpoint asmAddr(Ipv4(203, 0, 113, 11), 80);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  ASSERT_TRUE(bed.registerCatalogService("asm", asmAddr).ok());
  bed.warmImageCache("nginx");
  bed.warmImageCache("asm");

  int done = 0;
  bed.requestCatalog(0, "nginx", kNginxAddr, "nginx",
                     [&](Result<HttpExchange> r) {
                       ASSERT_TRUE(r.ok());
                       ++done;
                     });
  bed.requestCatalog(1, "asm", asmAddr, "asm", [&](Result<HttpExchange> r) {
    ASSERT_TRUE(r.ok());
    ++done;
  });
  bed.sim().runUntil(30_s);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(bed.controller().dispatcher().deploymentsTriggered(), 2u);
  EXPECT_EQ(bed.dockerEngine().runtime().startedCount(), 2u);
}

}  // namespace
}  // namespace edgesim::core
