// Tests for the container substrate: image refs/layers, registries, the
// layer store (shared-layer refcounting), pull coalescing, and the
// containerd runtime lifecycle.
#include <gtest/gtest.h>

#include <optional>

#include "container/image.hpp"
#include "container/layer_store.hpp"
#include "container/puller.hpp"
#include "container/registry.hpp"
#include "container/runtime.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace edgesim::container {
namespace {

using namespace timeliterals;

// ---------------------------------------------------------------- image ----

TEST(ImageRef, ParseVariants) {
  auto ref = ImageRef::parse("nginx:1.23.2");
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->registry, "");
  EXPECT_EQ(ref->repository, "nginx");
  EXPECT_EQ(ref->tag, "1.23.2");

  ref = ImageRef::parse("gcr.io/tensorflow-serving/resnet");
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->registry, "gcr.io");
  EXPECT_EQ(ref->repository, "tensorflow-serving/resnet");
  EXPECT_EQ(ref->tag, "latest");

  ref = ImageRef::parse("josefhammer/web-asm:amd64");
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->registry, "");
  EXPECT_EQ(ref->repository, "josefhammer/web-asm");
  EXPECT_EQ(ref->tag, "amd64");

  ref = ImageRef::parse("registry.local:5000/app:v2");
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->registry, "registry.local:5000");
  EXPECT_EQ(ref->repository, "app");
  EXPECT_EQ(ref->tag, "v2");

  EXPECT_FALSE(ImageRef::parse("").has_value());
  EXPECT_FALSE(ImageRef::parse("nginx:").has_value());
}

TEST(ImageRef, RoundTripToString) {
  const auto ref = ImageRef::parse("gcr.io/tf/resnet:v1");
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->toString(), "gcr.io/tf/resnet:v1");
  EXPECT_EQ(ImageRef::parse(ref->toString()), ref);
}

TEST(MakeImage, LayerCountAndTotalSizeExact) {
  const auto ref = *ImageRef::parse("nginx:1.23.2");
  const Image image = makeImage(ref, 135_MiB, 6);
  EXPECT_EQ(image.layerCount(), 6u);
  EXPECT_EQ(image.totalSize(), 135_MiB);
  // Dominant layer carries most of the bytes.
  EXPECT_GT(image.layers[0].size.value, image.totalSize().value / 2);
}

TEST(MakeImage, SingleLayer) {
  const Image image = makeImage(*ImageRef::parse("web-asm:amd64"),
                                Bytes{6329}, 1);
  EXPECT_EQ(image.layerCount(), 1u);
  EXPECT_EQ(image.totalSize(), Bytes{6329});
}

TEST(MakeImage, SharedBaseLayersIncluded) {
  const Image base = makeImage(*ImageRef::parse("nginx:1.23.2"), 135_MiB, 6);
  std::vector<Layer> shared(base.layers.begin(), base.layers.begin() + 2);
  Bytes sharedSize;
  for (const auto& layer : shared) sharedSize += layer.size;

  const Image derived =
      makeImage(*ImageRef::parse("nginx-py:1"), sharedSize + 46_MiB, 7, shared);
  EXPECT_EQ(derived.layerCount(), 7u);
  EXPECT_EQ(derived.layers[0].digest, base.layers[0].digest);
  EXPECT_EQ(derived.layers[1].digest, base.layers[1].digest);
  EXPECT_EQ(derived.totalSize(), sharedSize + 46_MiB);
}

// ------------------------------------------------------------- registry ----

TEST(RegistryTest, ManifestLookup) {
  Registry registry("hub", publicRegistryProfile());
  registry.push(makeImage(*ImageRef::parse("nginx:1.23.2"), 135_MiB, 6));
  EXPECT_TRUE(registry.hasImage(*ImageRef::parse("nginx:1.23.2")));
  EXPECT_FALSE(registry.hasImage(*ImageRef::parse("nginx:latest")));
  const auto manifest = registry.manifest(*ImageRef::parse("nginx:1.23.2"));
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().layerCount(), 6u);
  const auto missing = registry.manifest(*ImageRef::parse("nope:1"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, Errc::kNotFound);
}

TEST(RegistryTest, UnavailableRejects) {
  Registry registry("hub", publicRegistryProfile());
  registry.push(makeImage(*ImageRef::parse("nginx:1"), 10_MiB, 2));
  registry.setAvailable(false);
  const auto manifest = registry.manifest(*ImageRef::parse("nginx:1"));
  ASSERT_FALSE(manifest.ok());
  EXPECT_EQ(manifest.error().code, Errc::kUnavailable);
}

TEST(RegistryTest, DownloadTimeScalesWithLayersAndBytes) {
  Registry pub("hub", publicRegistryProfile());
  Registry priv("local", privateRegistryProfile());
  const Image small = makeImage(*ImageRef::parse("a:1"), 1_MiB, 1);
  const Image large = makeImage(*ImageRef::parse("b:1"), 300_MiB, 9);
  EXPECT_LT(pub.downloadTime(small.layers), pub.downloadTime(large.layers));
  // Private registry is strictly faster, by >= 1 s for multi-layer images
  // (fig. 13: "pull times improve by about 1.5 to 2 seconds").
  const auto savings = pub.downloadTime(large.layers).toSeconds() -
                       priv.downloadTime(large.layers).toSeconds();
  EXPECT_GT(savings, 1.0);
  EXPECT_LT(savings, 6.0);
}

TEST(RegistryTest, EmptyLayerListStillPaysRtt) {
  Registry pub("hub", publicRegistryProfile());
  EXPECT_EQ(pub.downloadTime({}), publicRegistryProfile().requestRtt);
}

// ----------------------------------------------------------- layer store ----

TEST(LayerStoreTest, MissingLayersAndCommit) {
  LayerStore store;
  const Image image = makeImage(*ImageRef::parse("nginx:1"), 135_MiB, 6);
  EXPECT_EQ(store.missingLayers(image).size(), 6u);
  EXPECT_FALSE(store.hasImage(image.ref));
  store.commitImage(image);
  EXPECT_TRUE(store.hasImage(image.ref));
  EXPECT_TRUE(store.missingLayers(image).empty());
  EXPECT_EQ(store.diskUsage(), 135_MiB);
}

TEST(LayerStoreTest, SharedLayersCountedOnce) {
  LayerStore store;
  const Image base = makeImage(*ImageRef::parse("nginx:1"), 100_MiB, 4);
  std::vector<Layer> shared(base.layers.begin(), base.layers.begin() + 2);
  Bytes sharedSize;
  for (const auto& layer : shared) sharedSize += layer.size;
  const Image derived =
      makeImage(*ImageRef::parse("app:1"), sharedSize + 30_MiB, 5, shared);

  store.commitImage(base);
  store.commitImage(derived);
  EXPECT_EQ(store.imageCount(), 2u);
  EXPECT_EQ(store.diskUsage(), 130_MiB);  // shared bytes once

  // Only the derived image's own layers are missing after deleting it.
  EXPECT_TRUE(store.removeImage(derived.ref));
  EXPECT_EQ(store.diskUsage(), 100_MiB);
  EXPECT_TRUE(store.hasImage(base.ref));
  // §IV-C: re-pulling `derived` now only needs its non-shared layers.
  EXPECT_EQ(store.missingLayers(derived).size(), 3u);
}

TEST(LayerStoreTest, RemoveLastReferenceGarbageCollects) {
  LayerStore store;
  const Image image = makeImage(*ImageRef::parse("a:1"), 10_MiB, 3);
  store.commitImage(image);
  EXPECT_TRUE(store.removeImage(image.ref));
  EXPECT_EQ(store.layerCount(), 0u);
  EXPECT_EQ(store.diskUsage(), Bytes{0});
  EXPECT_FALSE(store.removeImage(image.ref));  // second delete fails
}

TEST(LayerStoreTest, DoubleCommitIsIdempotent) {
  LayerStore store;
  const Image image = makeImage(*ImageRef::parse("a:1"), 10_MiB, 2);
  store.commitImage(image);
  store.commitImage(image);
  EXPECT_EQ(store.imageCount(), 1u);
  EXPECT_EQ(store.diskUsage(), 10_MiB);
  EXPECT_TRUE(store.removeImage(image.ref));
  EXPECT_EQ(store.layerCount(), 0u);
}

// --------------------------------------------------------------- puller ----

class PullerFixture : public ::testing::Test {
 protected:
  PullerFixture()
      : sim_(31),
        registry_("hub", publicRegistryProfile()),
        puller_(sim_, store_) {
    registry_.push(makeImage(*ImageRef::parse("nginx:1.23.2"), 135_MiB, 6));
  }

  Simulation sim_;
  Registry registry_;
  LayerStore store_;
  ImagePuller puller_;
};

TEST_F(PullerFixture, ColdPullTakesDownloadTime) {
  const auto ref = *ImageRef::parse("nginx:1.23.2");
  std::optional<Status> done;
  puller_.pull(registry_, ref, [&](Status s) { done = s; });
  EXPECT_TRUE(puller_.pulling(ref));
  sim_.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->ok());
  EXPECT_TRUE(store_.hasImage(ref));
  const auto expected =
      registry_.downloadTime(makeImage(ref, 135_MiB, 6).layers);
  EXPECT_EQ(sim_.now(), expected);
}

TEST_F(PullerFixture, WarmPullIsImmediate) {
  const auto ref = *ImageRef::parse("nginx:1.23.2");
  store_.commitImage(makeImage(ref, 135_MiB, 6));
  std::optional<Status> done;
  puller_.pull(registry_, ref, [&](Status s) { done = s; });
  sim_.run();
  ASSERT_TRUE(done.has_value() && done->ok());
  EXPECT_EQ(sim_.now(), SimTime::zero());
  EXPECT_EQ(registry_.pullCount(), 0u);
}

TEST_F(PullerFixture, ConcurrentPullsCoalesce) {
  const auto ref = *ImageRef::parse("nginx:1.23.2");
  int completions = 0;
  for (int i = 0; i < 5; ++i) {
    puller_.pull(registry_, ref, [&](Status s) {
      EXPECT_TRUE(s.ok());
      ++completions;
    });
  }
  sim_.run();
  EXPECT_EQ(completions, 5);
  EXPECT_EQ(puller_.completedPulls(), 1u);
  EXPECT_EQ(puller_.coalescedPulls(), 4u);
  EXPECT_EQ(registry_.pullCount(), 1u);
}

TEST_F(PullerFixture, MissingImageFails) {
  std::optional<Status> done;
  puller_.pull(registry_, *ImageRef::parse("ghost:1"),
               [&](Status s) { done = s; });
  sim_.run();
  ASSERT_TRUE(done.has_value());
  ASSERT_FALSE(done->ok());
  EXPECT_EQ(done->error().code, Errc::kNotFound);
}

TEST_F(PullerFixture, RegistryDownFails) {
  registry_.setAvailable(false);
  std::optional<Status> done;
  puller_.pull(registry_, *ImageRef::parse("nginx:1.23.2"),
               [&](Status s) { done = s; });
  sim_.run();
  ASSERT_TRUE(done.has_value());
  ASSERT_FALSE(done->ok());
  EXPECT_EQ(done->error().code, Errc::kUnavailable);
}

// -------------------------------------------------------------- runtime ----

class RuntimeFixture : public ::testing::Test {
 protected:
  RuntimeFixture()
      : sim_(41),
        net_(sim_),
        node_(net_, "edge-node", Ipv4(10, 0, 1, 5), Mac(0x05)),
        client_(net_, "client", Ipv4(10, 0, 0, 1), Mac(0x01)),
        runtime_(sim_, node_, store_) {
    net_.connect(client_, node_, 1_ms, 1_Gbps);
    const Image image = makeImage(*ImageRef::parse("nginx:1.23.2"), 135_MiB, 6);
    store_.commitImage(image);
    spec_.name = "web";
    spec_.image = image.ref;
    spec_.containerPort = 80;
    spec_.labels["edge.service"] = "web.example:80";
    spec_.app.startupDelay = 60_ms;
    spec_.app.requestCompute = 1_ms;
    spec_.app.responseBytes = Bytes{500};
  }

  Simulation sim_;
  Network net_;
  LayerStore store_;
  Host node_;
  Host client_;
  ContainerdRuntime runtime_;
  ContainerSpec spec_;
};

TEST_F(RuntimeFixture, CreateRequiresImage) {
  ContainerSpec ghost = spec_;
  ghost.image = *ImageRef::parse("ghost:1");
  const auto result = runtime_.create(ghost);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kFailedPrecondition);
}

TEST_F(RuntimeFixture, LifecycleCreatedStartingRunning) {
  const auto created = runtime_.create(spec_);
  ASSERT_TRUE(created.ok());
  const ContainerId id = created.value();
  EXPECT_EQ(runtime_.find(id)->state, ContainerState::kCreated);

  std::optional<Status> started;
  ASSERT_TRUE(runtime_.start(id, [&](Status s) { started = s; }).ok());
  EXPECT_EQ(runtime_.find(id)->state, ContainerState::kStarting);
  sim_.run();
  ASSERT_TRUE(started.has_value() && started->ok());
  EXPECT_EQ(runtime_.find(id)->state, ContainerState::kRunning);
  EXPECT_NE(runtime_.find(id)->hostPort, 0);
  // Ready strictly after start (app startupDelay).
  EXPECT_GE(runtime_.find(id)->readyAt - runtime_.find(id)->startedAt, 60_ms);
}

TEST_F(RuntimeFixture, ServesHttpOnceReady) {
  const auto id = runtime_.create(spec_).value();
  (void)runtime_.start(id, [](Status) {});
  sim_.run();
  const auto endpoint = runtime_.endpointOf(id);
  ASSERT_TRUE(endpoint.ok());

  std::optional<Result<HttpExchange>> got;
  client_.httpRequest(endpoint.value(), HttpRequest{},
                      [&](Result<HttpExchange> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_EQ(got->value().response.status, 200);
  EXPECT_EQ(got->value().response.payload, Bytes{500});
}

TEST_F(RuntimeFixture, DoubleStartRejected) {
  const auto id = runtime_.create(spec_).value();
  (void)runtime_.start(id, [](Status) {});
  sim_.run();
  const auto second = runtime_.start(id, [](Status) {});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, Errc::kFailedPrecondition);
}

TEST_F(RuntimeFixture, StopClosesPortAndAllowsRestart) {
  const auto id = runtime_.create(spec_).value();
  (void)runtime_.start(id, [](Status) {});
  sim_.run();
  const auto port = runtime_.find(id)->hostPort;
  EXPECT_TRUE(node_.listening(port));

  std::optional<Status> stopped;
  ASSERT_TRUE(runtime_.stop(id, [&](Status s) { stopped = s; }).ok());
  sim_.run();
  ASSERT_TRUE(stopped.has_value() && stopped->ok());
  EXPECT_EQ(runtime_.find(id)->state, ContainerState::kExited);
  EXPECT_FALSE(node_.listening(port));
  EXPECT_FALSE(runtime_.endpointOf(id).ok());

  // Exited containers can be started again (docker start semantics).
  std::optional<Status> restarted;
  ASSERT_TRUE(runtime_.start(id, [&](Status s) { restarted = s; }).ok());
  sim_.run();
  ASSERT_TRUE(restarted.has_value() && restarted->ok());
  EXPECT_EQ(runtime_.find(id)->state, ContainerState::kRunning);
}

TEST_F(RuntimeFixture, RemoveRequiresStopped) {
  const auto id = runtime_.create(spec_).value();
  (void)runtime_.start(id, [](Status) {});
  sim_.run();
  EXPECT_FALSE(runtime_.remove(id).ok());
  (void)runtime_.stop(id, [](Status) {});
  sim_.run();
  EXPECT_TRUE(runtime_.remove(id).ok());
  EXPECT_EQ(runtime_.find(id), nullptr);
}

TEST_F(RuntimeFixture, LabelSelectorListing) {
  const auto id1 = runtime_.create(spec_).value();
  ContainerSpec other = spec_;
  other.labels["edge.service"] = "other.example:80";
  const auto id2 = runtime_.create(other).value();
  (void)id1;
  (void)id2;
  EXPECT_EQ(runtime_.list().size(), 2u);
  EXPECT_EQ(runtime_.list({{"edge.service", "web.example:80"}}).size(), 1u);
  EXPECT_EQ(runtime_.list({{"edge.service", "nope"}}).size(), 0u);
}

TEST_F(RuntimeFixture, CrashOnStartNeverBindsPort) {
  ContainerSpec crashy = spec_;
  crashy.app.crashOnStartProbability = 1.0;
  const auto id = runtime_.create(crashy).value();
  std::optional<Status> started;
  (void)runtime_.start(id, [&](Status s) { started = s; });
  sim_.run();
  ASSERT_TRUE(started.has_value() && started->ok());
  EXPECT_EQ(runtime_.find(id)->state, ContainerState::kExited);
  EXPECT_EQ(runtime_.find(id)->hostPort, 0);
}

TEST_F(RuntimeFixture, HelperContainerWithoutPort) {
  ContainerSpec helper = spec_;
  helper.app.exposesPort = false;
  const auto id = runtime_.create(helper).value();
  (void)runtime_.start(id, [](Status) {});
  sim_.run();
  EXPECT_EQ(runtime_.find(id)->state, ContainerState::kRunning);
  EXPECT_EQ(runtime_.find(id)->hostPort, 0);
  EXPECT_FALSE(runtime_.endpointOf(id).ok());
  // Ready as soon as running.
  EXPECT_EQ(runtime_.find(id)->readyAt, runtime_.find(id)->startedAt);
}

TEST_F(RuntimeFixture, ConcurrentRequestsQueuePerContainer) {
  // Single-worker service model: two simultaneous requests serialise, so
  // the second completes roughly one compute interval after the first.
  spec_.app.requestCompute = 100_ms;
  const auto id = runtime_.create(spec_).value();
  (void)runtime_.start(id, [](Status) {});
  sim_.run();
  const auto endpoint = runtime_.endpointOf(id).value();

  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    client_.httpRequest(endpoint, HttpRequest{},
                        [&](Result<HttpExchange> r) {
                          ASSERT_TRUE(r.ok());
                          completions.push_back(sim_.now());
                        });
  }
  sim_.run();
  ASSERT_EQ(completions.size(), 3u);
  // Completion spacing ~= compute time (not all at once).
  EXPECT_GE((completions[1] - completions[0]).toMillis(), 95.0);
  EXPECT_GE((completions[2] - completions[1]).toMillis(), 95.0);
  EXPECT_EQ(runtime_.find(id)->requestsServed, 3u);
}

TEST_F(RuntimeFixture, RequestCounterTracksLoad) {
  const auto id = runtime_.create(spec_).value();
  (void)runtime_.start(id, [](Status) {});
  sim_.run();
  EXPECT_EQ(runtime_.find(id)->requestsServed, 0u);
  const auto endpoint = runtime_.endpointOf(id).value();
  for (int i = 0; i < 5; ++i) {
    client_.httpRequest(endpoint, HttpRequest{}, [](Result<HttpExchange>) {});
  }
  sim_.run();
  EXPECT_EQ(runtime_.find(id)->requestsServed, 5u);
}

TEST_F(RuntimeFixture, StartLatencyIsImageSizeIndependent) {
  // Asm (6 KiB) and Nginx (135 MiB) must start in comparable time ("no
  // notable difference", fig. 11 discussion); only app startupDelay varies.
  const Image tiny = makeImage(*ImageRef::parse("web-asm:amd64"), Bytes{6329}, 1);
  store_.commitImage(tiny);
  ContainerSpec asmSpec = spec_;
  asmSpec.image = tiny.ref;
  asmSpec.app.startupDelay = 5_ms;

  const auto idAsm = runtime_.create(asmSpec).value();
  SimTime asmStarted;
  (void)runtime_.start(idAsm, [&](Status) { asmStarted = sim_.now(); });
  sim_.run();

  const auto idNginx = runtime_.create(spec_).value();
  const SimTime base = sim_.now();
  SimTime nginxStarted;
  (void)runtime_.start(idNginx, [&](Status) { nginxStarted = sim_.now(); });
  sim_.run();

  const double asmSec = asmStarted.toSeconds();
  const double nginxSec = (nginxStarted - base).toSeconds();
  EXPECT_NEAR(asmSec, nginxSec, 0.15);  // same start cost, modulo jitter
}

}  // namespace
}  // namespace edgesim::container
