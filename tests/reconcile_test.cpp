// Control-channel resilience tests: the acked-FlowMod install path
// (retry, failover, accounting invariant), the three control-channel fault
// sites threaded through OpenFlowSwitch (per-message loss, outage windows,
// switch restarts), and the anti-entropy RuleReconciler (missing-rule
// repair, orphan deletion, FlowRemoved resynthesis, lossy-sweep deadlines).
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>

#include "core/rule_reconciler.hpp"
#include "core/testbed.hpp"
#include "fault/fault_plan.hpp"

namespace edgesim::core {
namespace {

using namespace timeliterals;
using fault::FaultPlan;
using fault::FaultSite;
using fault::FaultSpec;
using openflow::FlowEntry;
using openflow::FlowMatch;

const Endpoint kNginxAddr{Ipv4(203, 0, 113, 10), 80};

FaultSpec controlFault(FaultSite site, std::string target) {
  FaultSpec spec;
  spec.site = site;
  spec.target = std::move(target);
  return spec;
}

/// Redirect-entry diff key, mirroring RuleReconciler's shape identity.
std::string shapeKey(const FlowEntry& entry) {
  return std::to_string(entry.priority) + "|" + entry.match.toString() + "|" +
         openflow::actionsToString(entry.actions);
}

std::set<std::string> redirectShapes(const openflow::OpenFlowSwitch& sw) {
  std::set<std::string> shapes;
  for (const auto& entry : sw.table().entries()) {
    if (entry.priority >= kRedirectPriority) shapes.insert(shapeKey(entry));
  }
  return shapes;
}

void expectAccountingInvariant(EdgeController& controller) {
  EXPECT_EQ(controller.flowModsSent(),
            controller.flowModsAcked() + controller.flowModsTimedOut());
  EXPECT_EQ(controller.pendingInstallCount(), 0u);
}

// ------------------------------------------------------------ config ----

TEST(ReconcileConfigTest, ParsesResilienceKeys) {
  const auto parsed = Config::parse(R"(
reliable_flow_mods = false
flow_mod_ack_timeout_ms = 75
flow_mod_retries = 5
reconcile_period_ms = 2000
reconcile_sweep_timeout_ms = 100
)");
  ASSERT_TRUE(parsed.ok());
  const auto options = ControllerOptions::fromConfig(parsed.value());
  EXPECT_FALSE(options.reliableFlowMods);
  EXPECT_EQ(options.flowModAckTimeout, 75_ms);
  EXPECT_EQ(options.flowModRetries, 5);
  EXPECT_EQ(options.reconcilePeriod, 2_s);
  EXPECT_EQ(options.reconcileSweepTimeout, 100_ms);
}

TEST(ReconcileConfigTest, ReconcileEnabledImpliesDefaultPeriod) {
  const auto parsed = Config::parse("reconcile_enabled = true\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ControllerOptions::fromConfig(parsed.value()).reconcilePeriod,
            1_s);
  // Off by default: no period, no reconciler.
  EXPECT_EQ(ControllerOptions::fromConfig(Config()).reconcilePeriod,
            SimTime::zero());
}

// ---------------------------------------------------- acked installs ----

TEST(ReconcileTest, CleanChannelAcksEveryInstall) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(10_s);

  ASSERT_TRUE(got.has_value() && got->ok());
  auto& ctrl = bed.controller();
  EXPECT_GT(ctrl.flowModsSent(), 0u);
  EXPECT_EQ(ctrl.flowModsAcked(), ctrl.flowModsSent());
  EXPECT_EQ(ctrl.flowModsTimedOut(), 0u);
  EXPECT_EQ(ctrl.flowModResends(), 0u);
  expectAccountingInvariant(ctrl);
}

TEST(ReconcileTest, LegacyModeSendsUntracked) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.reliableFlowMods = false;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(10_s);

  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_EQ(bed.controller().flowModsSent(), 0u);
  EXPECT_EQ(bed.controller().flowModsAcked(), 0u);
}

TEST(ReconcileTest, ControlChannelLossTriggersRetry) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  // Eat the first two controller->switch messages after injection; the
  // ack deadline fires and the capped-backoff retry repairs the install.
  FaultPlan plan(11);
  FaultSpec loss = controlFault(FaultSite::kControlChannelLoss, "ovs/c2s");
  loss.maxTriggers = 2;
  plan.add(loss);
  bed.injectFaults(plan);

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(20_s);

  ASSERT_TRUE(got.has_value() && got->ok()) << "lost FlowMods must be retried";
  auto& ctrl = bed.controller();
  EXPECT_GE(ctrl.flowModResends(), 1u);
  EXPECT_GT(ctrl.flowModsTimedOut(), 0u);
  EXPECT_EQ(bed.ovs().controlDrops(), 2u);
  EXPECT_EQ(ctrl.flowModFailovers(), 0u);
  expectAccountingInvariant(ctrl);
}

TEST(ReconcileTest, FailoverAfterRetriesExhausted) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  // Enough drops to exhaust a full install cycle (1 initial + 3 retries,
  // two entries each, plus packet-outs and the installs spawned by SYN
  // retransmits sharing the same window), then the channel heals: a later
  // SYN retransmit resolves cleanly and the request completes -- degraded,
  // not blackholed.
  FaultPlan plan(11);
  FaultSpec loss = controlFault(FaultSite::kControlChannelLoss, "ovs/c2s");
  loss.maxTriggers = 20;
  plan.add(loss);
  bed.injectFaults(plan);

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(60_s);

  auto& ctrl = bed.controller();
  EXPECT_GE(ctrl.flowModFailovers(), 1u);
  EXPECT_GE(ctrl.requestsDegraded(), 1u);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok()) << "failover must keep the request answerable";
  // The flow stays memorized; once the channel heals, SYN-retransmit
  // resolutions may legitimately rebind it from the degraded cloud
  // instance back to the edge, so only existence is pinned here.
  EXPECT_TRUE(
      ctrl.flowMemory().lookup(bed.client(0).ip(), kNginxAddr).has_value());
  expectAccountingInvariant(ctrl);
}

// ------------------------------------------------- outage & restart ----

TEST(ReconcileTest, OutageWindowDropsControlMessages) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);

  FaultPlan plan(11);
  FaultSpec outage = controlFault(FaultSite::kControlChannelOutage, "ovs");
  outage.at = 1_s;
  outage.duration = 200_ms;
  plan.add(outage);
  bed.injectFaults(plan);

  bed.sim().runUntil(1100_ms);
  EXPECT_FALSE(bed.ovs().channelUp());

  // A FlowMod sent inside the window is dropped: no install, no ack.
  FlowEntry entry;
  entry.priority = 100;
  entry.match = FlowMatch::anyToService(kNginxAddr);
  entry.cookie = 99;
  const std::size_t before = bed.ovs().table().size();
  bool acked = false;
  bed.ovs().sendFlowMod(entry, [&] { acked = true; });
  bed.sim().runUntil(1150_ms);
  EXPECT_FALSE(acked);
  EXPECT_EQ(bed.ovs().table().size(), before);
  EXPECT_GE(bed.ovs().controlDrops(), 1u);

  // After the window lifts the channel carries messages again.
  bed.sim().runUntil(1300_ms);
  EXPECT_TRUE(bed.ovs().channelUp());
  bed.ovs().sendFlowMod(entry, [&] { acked = true; });
  bed.sim().runUntil(1400_ms);
  EXPECT_TRUE(acked);
  EXPECT_EQ(bed.ovs().table().size(), before + 1);
}

TEST(ReconcileTest, SwitchRestartWipesFlowTable) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  // Long idle timeouts so the redirect entries are still installed when
  // the restart hits.
  options.controller.switchIdleTimeout = 60_s;
  options.controller.memoryIdleTimeout = 300_s;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  FaultPlan plan(11);
  FaultSpec restart = controlFault(FaultSite::kSwitchRestart, "ovs");
  restart.at = 6_s;  // instant restart: duration zero
  plan.add(restart);
  bed.injectFaults(plan);

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(5900_ms);
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_GT(bed.ovs().table().size(), 0u);
  EXPECT_FALSE(redirectShapes(bed.ovs()).empty());

  bed.sim().runUntil(6100_ms);
  EXPECT_EQ(bed.ovs().table().size(), 0u);
  EXPECT_EQ(bed.ovs().restartCount(), 1u);
  // The crash loses FlowRemoved notifications: the controller still
  // believes in the flow.
  EXPECT_TRUE(bed.controller()
                  .flowMemory()
                  .lookup(bed.client(0).ip(), kNginxAddr)
                  .has_value());
}

// --------------------------------------------------------- reconciler ----

TEST(ReconcileTest, RestartDriftRepairedWithinTwoSweeps) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.reconcilePeriod = 1_s;
  options.controller.switchIdleTimeout = 60_s;
  options.controller.memoryIdleTimeout = 300_s;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  FaultPlan plan(11);
  FaultSpec restart = controlFault(FaultSite::kSwitchRestart, "ovs");
  restart.at = 5500_ms;
  plan.add(restart);
  bed.injectFaults(plan);

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(3_s);
  ASSERT_TRUE(got.has_value() && got->ok());
  const auto intendedBefore = redirectShapes(bed.ovs());
  ASSERT_FALSE(intendedBefore.empty());

  // Restart at 5.5s wipes the table; sweeps at 6s and 7s must restore it.
  bed.sim().runUntil(7500_ms);
  EXPECT_EQ(bed.ovs().restartCount(), 1u);
  auto* reconciler = bed.controller().reconciler();
  ASSERT_NE(reconciler, nullptr);
  EXPECT_GE(reconciler->stats().sweeps, 2u);
  EXPECT_GE(reconciler->stats().driftMissing, 1u);
  EXPECT_GE(reconciler->stats().flowsReinstalled, 1u);
  EXPECT_GE(reconciler->stats().flowRemovedResynthesized, 1u);

  // The repaired table carries exactly the intended redirect entries.
  std::set<std::string> intended;
  for (const auto& flow : bed.controller().intendedFlows(bed.ovs())) {
    for (const auto& entry : flow.entries) intended.insert(shapeKey(entry));
  }
  EXPECT_EQ(redirectShapes(bed.ovs()), intended);
  EXPECT_EQ(redirectShapes(bed.ovs()), intendedBefore);
  expectAccountingInvariant(bed.controller());
  // Telemetry mirrors the stats counters.
  EXPECT_GE(bed.telemetry()
                .counter("edgesim_reconcile_rules_reinstalled_total")
                .value(),
            1u);
}

TEST(ReconcileTest, OrphanEntriesDeleted) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  // Reconciler exists but the periodic sweep stays out of the way; the
  // test drives sweeps explicitly.
  options.controller.reconcilePeriod = 1000_s;
  Testbed bed(options);

  FlowEntry orphan;
  orphan.priority = 100;
  orphan.match = FlowMatch::anyToService(kNginxAddr);
  orphan.cookie = 4242;
  bed.ovs().sendFlowMod(orphan);
  bed.sim().runUntil(100_ms);
  ASSERT_FALSE(redirectShapes(bed.ovs()).empty());

  auto* reconciler = bed.controller().reconciler();
  ASSERT_NE(reconciler, nullptr);
  bool settled = false;
  reconciler->sweepNow([&] { settled = true; });
  bed.sim().runUntil(1_s);

  EXPECT_TRUE(settled);
  EXPECT_EQ(reconciler->stats().driftOrphans, 1u);
  EXPECT_EQ(reconciler->stats().orphansDeleted, 1u);
  EXPECT_TRUE(redirectShapes(bed.ovs()).empty());

  // A second sweep over the converged table is a pure no-op.
  reconciler->sweepNow();
  bed.sim().runUntil(2_s);
  EXPECT_EQ(reconciler->stats().sweeps, 2u);
  EXPECT_EQ(reconciler->stats().driftOrphans, 1u);
  EXPECT_EQ(reconciler->stats().driftMissing, 0u);
}

TEST(ReconcileTest, LostFlowRemovedIsResynthesized) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.reconcilePeriod = 2_s;
  options.controller.switchIdleTimeout = 500_ms;
  options.controller.memoryIdleTimeout = 300_s;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  // Let the handshake's switch->controller messages (one packet-in, two
  // install acks) through, then eat the next one: the idle-expiry
  // FlowRemoved.  The controller keeps believing in a flow the switch no
  // longer carries; the sweep re-installs it and refreshes the memorized
  // flow in lieu of the lost notification.
  FaultPlan plan(11);
  FaultSpec loss = controlFault(FaultSite::kControlChannelLoss, "ovs/s2c");
  loss.skipFirst = 3;
  loss.maxTriggers = 1;
  plan.add(loss);
  bed.injectFaults(plan);

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(10_s);

  ASSERT_TRUE(got.has_value() && got->ok());
  auto* reconciler = bed.controller().reconciler();
  ASSERT_NE(reconciler, nullptr);
  EXPECT_GE(reconciler->stats().driftMissing, 1u);
  EXPECT_GE(reconciler->stats().flowsReinstalled, 1u);
  EXPECT_GE(reconciler->stats().flowRemovedResynthesized, 1u);
  expectAccountingInvariant(bed.controller());
}

TEST(ReconcileTest, SweepDeadlineBoundsLostStatsReplies) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.reconcilePeriod = 1000_s;
  options.controller.reconcileSweepTimeout = 100_ms;
  Testbed bed(options);

  FaultPlan plan(11);
  FaultSpec outage = controlFault(FaultSite::kControlChannelOutage, "ovs");
  outage.at = 1_s;  // down for good
  plan.add(outage);
  bed.injectFaults(plan);

  bed.sim().runUntil(2_s);
  auto* reconciler = bed.controller().reconciler();
  ASSERT_NE(reconciler, nullptr);
  bool settled = false;
  SimTime settledAt;
  reconciler->sweepNow([&] {
    settled = true;
    settledAt = bed.sim().now();
  });
  bed.sim().runUntil(5_s);

  EXPECT_TRUE(settled) << "a dead switch must not wedge the sweeper";
  EXPECT_LE(settledAt, 2_s + 150_ms);
  EXPECT_EQ(reconciler->stats().statsTimeouts, 1u);
  EXPECT_EQ(reconciler->stats().sweeps, 1u);
  EXPECT_GE(bed.telemetry()
                .counter("edgesim_reconcile_stats_timeouts_total")
                .value(),
            1u);
}

}  // namespace
}  // namespace edgesim::core
