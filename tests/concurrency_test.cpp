// Concurrency suite for the sharded/threaded controller hot path.
//
// Run under ThreadSanitizer (cmake -DEDGESIM_SANITIZE=tsan, ctest
// -L concurrency) -- several tests here are primarily data-race probes:
// they hammer the shared structures from many threads and rely on TSan to
// flag any unsynchronized access, while their functional assertions pin
// the invariants the controller depends on:
//
//   * FlowMemory shards: no lost or duplicated installs, internally
//     consistent lookup snapshots, and exactly-once expiry per flow even
//     when touch() races expire() (the idle-timeout race).
//   * LaneExecutor: per-lane FIFO + mutual exclusion (asserted WITHOUT a
//     lock on the observation buffer, so a serialization bug is a TSan
//     race, not just a flaky ordering check) and cross-lane parallelism.
//   * EdgeController::submitRequest: mixed warm/cold storms resolve every
//     request exactly once, coalesce cold misses into one deployment, and
//     scale the idle service down exactly once afterwards.
//   * TraceRecorder / metrics::Recorder: request-ID allocation, span
//     recording and sample counters stay exact under contention.  These
//     are the regression tests for the formerly unguarded mutable state
//     (`++nextRequest_`, the samples map, the failure counter): on the
//     pre-shard code they fail under TSan and can lose updates.
//   * EdgeController::requestHandover: a handover storm from external
//     threads ping-ponging flows between clusters while warm-path lookups
//     hit the same FlowMemory shards from the worker pool; every callback
//     fires exactly once and the handover books balance exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/testbed.hpp"
#include "util/lane_executor.hpp"
#include "util/log.hpp"

namespace edgesim::core {
namespace {

using namespace timeliterals;

const Endpoint kSvc{Ipv4(203, 0, 113, 10), 80};
const Endpoint kNginxAddr{Ipv4(203, 0, 113, 10), 80};

Ipv4 clientIp(int i) {
  return Ipv4(10, 0, static_cast<std::uint8_t>(2 + i / 200),
              static_cast<std::uint8_t>(1 + i % 200));
}

// ---------------------------------------------------- FlowMemory shards ----

TEST(FlowMemoryConcurrency, ParallelInstallsAreNeitherLostNorDuplicated) {
  FlowMemory memory(60_s, 8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&memory, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Ipv4 client = clientIp(t * kPerThread + i);
        memory.upsert(client, kSvc, Endpoint(Ipv4(10, 0, 1, 1), 30000),
                      "docker-egs", SimTime::millis(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Distinct keys: every install must land exactly once.
  EXPECT_EQ(memory.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(memory.flowsFor(kSvc, "docker-egs"),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    EXPECT_TRUE(memory.lookup(clientIp(i), kSvc).has_value());
  }
}

TEST(FlowMemoryConcurrency, ContendedUpsertOfOneKeyStaysConsistent) {
  FlowMemory memory(60_s, 8);
  constexpr int kThreads = 8;
  const Ipv4 client(10, 0, 2, 1);

  // Each thread repeatedly writes its OWN (instance, cluster) pair; any
  // lookup must observe one of those pairs, never a torn mix.
  std::vector<std::thread> threads;
  std::atomic<int> inconsistent{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Endpoint instance(Ipv4(10, 0, 1, static_cast<std::uint8_t>(t + 1)),
                              static_cast<std::uint16_t>(30000 + t));
      const std::string cluster = "cluster-" + std::to_string(t);
      for (int i = 0; i < 300; ++i) {
        memory.upsert(client, kSvc, instance, cluster, SimTime::millis(i));
        const auto seen = memory.lookup(client, kSvc);
        if (!seen.has_value()) {
          inconsistent.fetch_add(1);
          continue;
        }
        const int writer = seen->instance.port - 30000;
        if (writer < 0 || writer >= kThreads ||
            seen->cluster != "cluster-" + std::to_string(writer) ||
            seen->instance.ip != Ipv4(10, 0, 1,
                                      static_cast<std::uint8_t>(writer + 1))) {
          inconsistent.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(inconsistent.load(), 0);
  EXPECT_EQ(memory.size(), 1u);  // one key, however contended
}

TEST(FlowMemoryConcurrency, ExpiryRaceExpiresEachFlowExactlyOnce) {
  // touch() refreshes under a shared lock while expire() sweeps under the
  // exclusive one: whatever interleaving happens, a flow must end up
  // either expired exactly once or still memorized -- never both, never
  // twice (a double expiry would double the controller's scale-downs).
  FlowMemory memory(100_ms, 8);
  constexpr int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    memory.upsert(clientIp(i), kSvc, Endpoint(Ipv4(10, 0, 1, 1), 30000),
                  "docker-egs", SimTime::zero());
  }

  std::vector<int> expiredCount(kKeys, 0);
  std::atomic<std::int64_t> logicalMillis{0};
  std::atomic<bool> stop{false};

  // Touchers keep half the keys warm at the advancing logical clock.
  std::vector<std::thread> touchers;
  for (int t = 0; t < 4; ++t) {
    touchers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const SimTime now =
            SimTime::millis(logicalMillis.load(std::memory_order_relaxed));
        for (int i = 0; i < kKeys; i += 2) {
          memory.touch(clientIp(i), kSvc, now);
        }
      }
    });
  }

  // Sweeper: advance the clock and expire concurrently with the touchers.
  for (int round = 1; round <= 40; ++round) {
    logicalMillis.store(round * 10, std::memory_order_relaxed);
    for (const auto& flow : memory.expire(SimTime::millis(round * 10))) {
      for (int i = 0; i < kKeys; ++i) {
        if (flow.client.ip == clientIp(i)) ++expiredCount[i];
      }
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : touchers) thread.join();

  // Final sweep far in the future catches everything still memorized.
  for (const auto& flow : memory.expire(SimTime::seconds(3600.0))) {
    for (int i = 0; i < kKeys; ++i) {
      if (flow.client.ip == clientIp(i)) ++expiredCount[i];
    }
  }
  EXPECT_EQ(memory.size(), 0u);
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(expiredCount[i], 1) << "flow " << i
                                  << " expired a wrong number of times";
  }
}

// ------------------------------------------------------- LaneExecutor ----

TEST(LaneExecutorTest, SameLaneRunsFifoAndExclusive) {
  LaneExecutor pool(4);
  constexpr int kTasks = 2000;
  // Deliberately unsynchronized: the per-lane serialization guarantee is
  // the only thing keeping this write race-free.  TSan enforces it.
  std::vector<int> order;
  order.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.post(7, [&order, i] { order.push_back(i); });
  }
  pool.drain();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(order[i], i);
}

TEST(LaneExecutorTest, DifferentLanesRunInParallel) {
  LaneExecutor pool(2);
  // Lane 0 blocks until lane 1 has run: only possible if the lanes map to
  // different, concurrently running workers.
  std::promise<void> lane1Ran;
  std::future<void> lane1Future = lane1Ran.get_future();
  std::atomic<bool> lane0Done{false};
  pool.post(0, [&] {
    lane1Future.wait();
    lane0Done.store(true);
  });
  pool.post(1, [&] { lane1Ran.set_value(); });
  pool.drain();
  EXPECT_TRUE(lane0Done.load());
}

TEST(LaneExecutorTest, DrainCoversTransitivelyPostedWork) {
  LaneExecutor pool(3);
  std::atomic<int> executed{0};
  for (int i = 0; i < 10; ++i) {
    pool.post(static_cast<std::uint64_t>(i), [&pool, &executed, i] {
      executed.fetch_add(1);
      pool.post(static_cast<std::uint64_t>(i + 1),
                [&executed] { executed.fetch_add(1); });
    });
  }
  pool.drain();
  EXPECT_EQ(executed.load(), 20);
  EXPECT_GE(pool.tasksExecuted(), 20u);
}

// ----------------------------------------- controller submitRequest ----

TEST(ControllerConcurrency, MixedWarmColdStormResolvesEveryRequestOnce) {
  TestbedOptions options;
  options.seed = 11;
  options.clientCount = 4;  // testbed hosts are irrelevant to submitRequest
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.flowShards = 8;
  options.controller.workers = 4;
  options.controller.memoryIdleTimeout = 60_s;
  options.controller.memoryScanPeriod = 500_ms;
  Testbed bed(options);
  bed.warmImageCache("nginx");
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());

  EdgeController& controller = bed.controller();
  Simulation& sim = bed.sim();

  constexpr int kDrivers = 4;
  constexpr int kClientsPerDriver = 8;
  constexpr int kRoundsPerClient = 5;
  constexpr int kTotal = kDrivers * kClientsPerDriver * kRoundsPerClient;

  std::vector<std::atomic<int>> callbackCount(kTotal);
  std::vector<std::atomic<int>> driverDone(kDrivers);
  std::vector<std::atomic<int>> driverPhase(kDrivers);
  std::atomic<int> completed{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      for (int round = 0; round < kRoundsPerClient; ++round) {
        for (int c = 0; c < kClientsPerDriver; ++c) {
          const int requestIndex =
              (d * kClientsPerDriver + c) * kRoundsPerClient + round;
          driverPhase[d].store(round * 100 + c * 10 + 1);
          // Round 0 is a cold burst (all drivers race one deployment);
          // later rounds hit the memorized flow on the worker pool.
          controller.submitRequest(
              clientIp(d * kClientsPerDriver + c), kNginxAddr,
              [&, requestIndex, d](Result<Redirect> result) {
                if (!result.ok()) failures.fetch_add(1);
                callbackCount[requestIndex].fetch_add(1);
                driverDone[d].fetch_add(1, std::memory_order_release);
                completed.fetch_add(1);
              });
          driverPhase[d].store(round * 100 + c * 10 + 2);
        }
        // Closed loop: wait for this round's redirects before firing the
        // next, so rounds 1+ find the flow memorized (warm path).
        driverPhase[d].store(round * 100 + 91);
        const int target = (round + 1) * kClientsPerDriver;
        while (driverDone[d].load(std::memory_order_acquire) < target) {
          std::this_thread::yield();
        }
        driverPhase[d].store(round * 100 + 92);
      }
      driverPhase[d].store(9999);
    });
  }

  // The main thread IS the simulation thread: pump the event loop so cold
  // requests (marshalled via postExternal) deploy and resolve.  The
  // waitForExternal pacing matters twice over on a small machine: it yields
  // the CPU to the driver/worker threads, and it stops the simulated clock
  // from racing ahead of the real-time drivers (which would idle-expire the
  // very flows the warm path is about to hit).
  int guard = 0;
  while (completed.load(std::memory_order_acquire) < kTotal) {
    sim.waitForExternal(std::chrono::microseconds(200));
    sim.pump(10_ms);
    ASSERT_LT(++guard, 50000)
        << "requests stalled; " << completed.load() << "/" << kTotal
        << " deployments=" << controller.dispatcher().deploymentsTriggered()
        << " pending=" << controller.dispatcher().pendingDeployments()
        << " warm=" << controller.warmHits()
        << " scaleDowns=" << controller.scaleDowns()
        << " memory=" << controller.flowMemory().size()
        << " simNow=" << sim.now().toSeconds()
        << " packetIns=" << controller.packetInCount()
        << " tasks=" << controller.workerPool()->tasksExecuted()
        << " drivers=" << driverDone[0].load() << "/" << driverDone[1].load()
        << "/" << driverDone[2].load() << "/" << driverDone[3].load()
        << " inFlight=" << controller.workerPool()->tasksInFlight()
        << " phase=" << driverPhase[0].load() << "/" << driverPhase[1].load()
        << "/" << driverPhase[2].load() << "/" << driverPhase[3].load();
  }
  for (auto& thread : drivers) thread.join();
  controller.workerPool()->drain();
  sim.pump(10_ms);  // absorb any trailing posts

  EXPECT_EQ(failures.load(), 0);
  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(callbackCount[i].load(), 1) << "request " << i;
  }
  EXPECT_EQ(controller.packetInCount(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(controller.requestsResolved(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(controller.requestsFailed(), 0u);
  // One service on one edge cluster: however many cold requests raced, the
  // dispatcher's pending table must have coalesced them into one deployment.
  EXPECT_EQ(controller.dispatcher().deploymentsTriggered(), 1u);
  // The warm path answered from FlowMemory on the workers.
  EXPECT_GE(controller.warmHits(),
            static_cast<std::uint64_t>(kTotal - kDrivers * kClientsPerDriver));

  // Everyone idles out: the service must scale down EXACTLY once (a double
  // scale-down is the classic expiry race).
  sim.runUntil(sim.now() + 120_s);
  EXPECT_EQ(controller.scaleDowns(), 1u);
  EXPECT_EQ(controller.flowMemory().size(), 0u);
}

// ----------------------------------------------- handover storm (TSan) ----
//
// Handovers mutate FlowMemory (rebind) on the sim thread while the worker
// pool serves warm lookups on the SAME shards.  This storm ping-pongs every
// client's flow between the EGS and the far edge from external driver
// threads (requestHandover marshals through postExternal, the one
// thread-safe seam) while other drivers hammer submitRequest.  Under TSan a
// rebind/lookup race is a report; functionally, every callback must fire
// exactly once and the accounting must balance exactly.

TEST(ControllerConcurrency, HandoverStormRacesWarmLookupsSafely) {
  TestbedOptions options;
  options.seed = 13;
  options.clientCount = 4;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.farEdge = true;
  options.controller.flowShards = 8;
  options.controller.workers = 4;
  // Effectively never: each stalled pump() below advances sim time 10 ms,
  // so a slow wall-clock interleaving can rack up hundreds of sim seconds
  // and expiry would race the final one-binding-per-client check.
  options.controller.memoryIdleTimeout = 86400_s;
  // The storm ping-pongs every client between the two clusters, so there
  // are moments one cluster holds zero flows; vacated-instance scale-down
  // would then force a real (re-)deploy whose phase timeout can fire under
  // pump-driven sim time, quarantine the cluster, and abort handovers to
  // the cloud.  The test is about warm re-steers racing lookups, so keep
  // both predeployed instances up.
  options.controller.scaleDownIdleServices = false;
  options.controller.memoryScanPeriod = 1_s;
  Testbed bed(options);
  bed.warmImageCache("nginx");
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());

  EdgeController& controller = bed.controller();
  Simulation& sim = bed.sim();

  // Bring up instances on BOTH edge clusters so every handover is a warm
  // re-steer (no deploys to coalesce) ...
  bool farReady = false;
  ASSERT_TRUE(controller
                  .predeploy(kNginxAddr, "docker-far",
                             [&](Result<Endpoint> r) {
                               ASSERT_TRUE(r.ok());
                               farReady = true;
                             })
                  .ok());
  while (!farReady) sim.runUntil(sim.now() + 1_s);

  // ... and memorize one flow per client (cold burst, then quiesce).
  constexpr int kClients = 8;
  std::atomic<int> established{0};
  for (int c = 0; c < kClients; ++c) {
    controller.submitRequest(clientIp(c), kNginxAddr,
                             [&](Result<Redirect> r) {
                               ASSERT_TRUE(r.ok());
                               established.fetch_add(1);
                             });
  }
  int setupGuard = 0;
  while (established.load(std::memory_order_acquire) < kClients) {
    sim.waitForExternal(std::chrono::microseconds(200));
    sim.pump(10_ms);
    ASSERT_LT(++setupGuard, 50000) << "setup stalled";
  }

  constexpr int kHandoverDrivers = 2;
  constexpr int kLookupDrivers = 2;
  constexpr int kRounds = 10;
  constexpr int kHandoverCalls = kHandoverDrivers * kClients * kRounds;
  constexpr int kLookupCalls = kLookupDrivers * kClients * kRounds;

  std::atomic<int> handoverCallbacks{0};
  std::atomic<int> lookupCallbacks{0};
  std::atomic<int> lookupFailures{0};

  std::vector<std::thread> drivers;
  for (int d = 0; d < kHandoverDrivers; ++d) {
    drivers.emplace_back([&, d] {
      for (int round = 0; round < kRounds; ++round) {
        // Both drivers ping-pong the same clients in opposite phases, so
        // no-op ("already-on-target"), dedupe ("handover-in-flight") and
        // real re-steers all interleave on the same PendingKey map.
        const bool toFar = (round + d) % 2 == 0;
        for (int c = 0; c < kClients; ++c) {
          controller.requestHandover(
              clientIp(c), kNginxAddr, toFar ? "docker-far" : "docker-egs",
              [&](const HandoverResult&) { handoverCallbacks.fetch_add(1); });
        }
        std::this_thread::yield();
      }
    });
  }
  for (int d = 0; d < kLookupDrivers; ++d) {
    drivers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (int c = 0; c < kClients; ++c) {
          // Warm path: FlowMemory lookup on a pool worker, racing rebinds
          // of the very same shard entries.
          controller.submitRequest(clientIp(c), kNginxAddr,
                                   [&](Result<Redirect> r) {
                                     if (!r.ok()) lookupFailures.fetch_add(1);
                                     lookupCallbacks.fetch_add(1);
                                   });
        }
        std::this_thread::yield();
      }
    });
  }

  int guard = 0;
  while (handoverCallbacks.load(std::memory_order_acquire) < kHandoverCalls ||
         lookupCallbacks.load(std::memory_order_acquire) < kLookupCalls) {
    sim.waitForExternal(std::chrono::microseconds(200));
    sim.pump(10_ms);
    ASSERT_LT(++guard, 50000)
        << "storm stalled; handovers=" << handoverCallbacks.load() << "/"
        << kHandoverCalls << " lookups=" << lookupCallbacks.load() << "/"
        << kLookupCalls << " started=" << controller.handoversStarted()
        << " completed=" << controller.handoversCompleted()
        << " aborted=" << controller.handoversAbortedToCloud();
  }
  for (auto& thread : drivers) thread.join();
  controller.workerPool()->drain();
  sim.pump(10_ms);

  EXPECT_EQ(handoverCallbacks.load(), kHandoverCalls);
  EXPECT_EQ(lookupCallbacks.load(), kLookupCalls);
  EXPECT_EQ(lookupFailures.load(), 0);
  EXPECT_EQ(controller.requestsFailed(), 0u);
  // Exact books: every started handover ended exactly one way.  (No cloud
  // aborts are expected here -- both targets stay healthy -- but the
  // invariant is the 2-way balance, not the split.)
  EXPECT_EQ(controller.handoversStarted(),
            controller.handoversCompleted() +
                controller.handoversAbortedToCloud());
  EXPECT_GT(controller.handoversStarted(), 0u);
  // Every client still holds exactly one consistent binding.
  for (int c = 0; c < kClients; ++c) {
    const auto flow = controller.flowMemory().lookup(clientIp(c), kNginxAddr);
    ASSERT_TRUE(flow.has_value()) << "client " << c;
    EXPECT_TRUE(flow->cluster == "docker-egs" || flow->cluster == "docker-far")
        << flow->cluster;
  }
}

// ------------------------------------ recorder thread-safety probes ----

TEST(RecorderConcurrency, TraceRequestIdsAreUniqueUnderContention) {
  // Regression probe for the unguarded `++nextRequest_`: racing allocators
  // used to be able to hand out duplicate request IDs (and trip TSan).
  trace::TraceRecorder trace;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<trace::RequestId>> ids(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, &ids, t] {
      ids[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) ids[t].push_back(trace.newRequest());
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<trace::RequestId> unique;
  for (const auto& perThread : ids) {
    unique.insert(perThread.begin(), perThread.end());
  }
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(*unique.rbegin(), static_cast<trace::RequestId>(kThreads) *
                                  kPerThread);  // dense: no lost increments
}

TEST(RecorderConcurrency, TraceSpansFromManyThreadsAllSurviveToExport) {
  trace::TraceRecorder trace;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 500;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto rid = trace.newRequest();
        const auto span = trace.beginSpan(rid, "work", "test",
                                          SimTime::millis(i));
        trace.instant(rid, "tick", "test", SimTime::millis(i),
                      {{"thread", std::to_string(t)}});
        trace.endSpan(span, SimTime::millis(i + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(trace.spanCount(), spans.size());
  std::set<trace::SpanId> spanIds;
  for (const auto& span : spans) {
    EXPECT_FALSE(span.open);
    spanIds.insert(span.id);
    const auto* byId = trace.spanById(span.id);
    ASSERT_NE(byId, nullptr);
    EXPECT_EQ(byId->id, span.id);
  }
  EXPECT_EQ(spanIds.size(), spans.size());  // encoded IDs never collide
  EXPECT_EQ(trace.instants().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(RecorderConcurrency, MetricsSamplesAndFailuresAreNotLost) {
  // Regression probe for the unguarded samples map / failure counter.
  metrics::Recorder recorder;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      const std::string series = "series/" + std::to_string(t % 4);
      for (int i = 0; i < kPerThread; ++i) {
        recorder.addSample(series, static_cast<double>(i));
        if (i % 10 == 0) {
          metrics::RequestRecord record;
          record.series = series;
          record.total = SimTime::millis(i);
          record.success = (t % 2 == 0);
          recorder.add(std::move(record));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::size_t samples = 0;
  for (const auto& name : recorder.seriesNames()) {
    samples += recorder.series(name)->count();
  }
  // addSample contributions plus the successful add() records.
  EXPECT_EQ(samples, static_cast<std::size_t>(kThreads) * kPerThread +
                         (kThreads / 2) * (kPerThread / 10));
  EXPECT_EQ(recorder.totalRecords(),
            static_cast<std::size_t>(kThreads) * (kPerThread / 10));
  EXPECT_EQ(recorder.failureCount(),
            static_cast<std::size_t>(kThreads / 2) * (kPerThread / 10));
}

}  // namespace
}  // namespace edgesim::core
