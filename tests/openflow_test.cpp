// Tests for the OpenFlow substrate: match semantics, action rewriting,
// flow-table priorities and timeouts, switch pipeline, packet buffering,
// and controller interaction (packet-in / flow-mod / packet-out /
// flow-removed) -- the §II "transparent access" mechanics.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "net/host.hpp"
#include "openflow/flow_table.hpp"
#include "openflow/switch.hpp"
#include "sim/simulation.hpp"

namespace edgesim::openflow {
namespace {

using namespace timeliterals;

const Endpoint kClient{Ipv4(10, 0, 0, 1), 40000};
const Endpoint kService{Ipv4(203, 0, 113, 10), 80};   // registered cloud addr
const Endpoint kInstance{Ipv4(10, 0, 1, 5), 30080};   // edge instance

Packet clientSyn() { return makeSyn(Mac(0x01), kClient, kService); }

// ---------------------------------------------------------------- match ----

TEST(FlowMatch, WildcardsMatchEverything) {
  const FlowMatch any;
  EXPECT_TRUE(any.matches(clientSyn(), 3));
  EXPECT_EQ(any.specificity(), 0);
}

TEST(FlowMatch, FieldMismatchFails) {
  FlowMatch m = FlowMatch::clientToService(kClient, kService);
  EXPECT_TRUE(m.matches(clientSyn(), 0));
  Packet other = clientSyn();
  other.tcpSrc = 40001;
  EXPECT_FALSE(m.matches(other, 0));
  other = clientSyn();
  other.ipDst = Ipv4(203, 0, 113, 11);
  EXPECT_FALSE(m.matches(other, 0));
}

TEST(FlowMatch, InPortNarrowing) {
  FlowMatch m = FlowMatch::anyToService(kService);
  m.inPort = 2;
  EXPECT_TRUE(m.matches(clientSyn(), 2));
  EXPECT_FALSE(m.matches(clientSyn(), 3));
}

TEST(FlowMatch, ToStringListsFields) {
  const FlowMatch m = FlowMatch::clientToService(kClient, kService);
  const auto text = m.toString();
  EXPECT_NE(text.find("ip_dst=203.0.113.10"), std::string::npos);
  EXPECT_NE(text.find("tcp_dst=80"), std::string::npos);
}

// -------------------------------------------------------------- actions ----

TEST(Actions, SetFieldRewritesCopy) {
  const Packet original = clientSyn();
  const ActionList actions{
      SetFieldAction::ipDst(kInstance.ip),
      SetFieldAction::tcpDst(kInstance.port),
      SetFieldAction::ethDst(Mac(0xbeef)),
      OutputAction{4},
  };
  const auto applied = applyActions(original, actions);
  EXPECT_EQ(applied.packet.ipDst, kInstance.ip);
  EXPECT_EQ(applied.packet.tcpDst, kInstance.port);
  EXPECT_EQ(applied.packet.ethDst, Mac(0xbeef));
  EXPECT_EQ(applied.outputs, (std::vector<PortId>{4}));
  EXPECT_FALSE(applied.toController);
  // Source packet untouched.
  EXPECT_EQ(original.ipDst, kService.ip);
}

TEST(Actions, ReverseRewriteRestoresServiceAddress) {
  // The edge instance answers from its real address; the switch rewrites the
  // source back to the registered service address (transparency, fig. 2).
  Packet reply = makeSynAck(Mac(0x05), kInstance, kClient);
  const ActionList actions{
      SetFieldAction::ipSrc(kService.ip),
      SetFieldAction::tcpSrc(kService.port),
      OutputAction{1},
  };
  const auto applied = applyActions(reply, actions);
  EXPECT_EQ(applied.packet.srcEndpoint(), kService);
  EXPECT_EQ(applied.packet.dstEndpoint(), kClient);
}

TEST(Actions, ToControllerFlag) {
  const auto applied = applyActions(clientSyn(), {ToControllerAction{}});
  EXPECT_TRUE(applied.toController);
  EXPECT_TRUE(applied.outputs.empty());
}

TEST(Actions, ToStringRendering) {
  const ActionList actions{SetFieldAction::tcpDst(8080), OutputAction{2},
                           ToControllerAction{}};
  EXPECT_EQ(actionsToString(actions), "set(tcp_dst=8080),output(2),controller");
}

// ----------------------------------------------------------- flow table ----

TEST(FlowTableTest, PriorityOrderWins) {
  FlowTable table;
  FlowEntry low;
  low.priority = 10;
  low.match = FlowMatch::anyToService(kService);
  low.actions = {OutputAction{1}};
  FlowEntry high;
  high.priority = 100;
  high.match = FlowMatch::clientToService(kClient, kService);
  high.actions = {OutputAction{2}};
  table.upsert(low, SimTime::zero());
  table.upsert(high, SimTime::zero());

  auto* hit = table.lookup(clientSyn(), 0, 1_ms);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 100);

  // A different client only matches the coarse rule.
  Packet other = clientSyn();
  other.ipSrc = Ipv4(10, 0, 0, 99);
  hit = table.lookup(other, 0, 1_ms);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 10);
}

TEST(FlowTableTest, EqualPriorityFirstInstalledWins) {
  FlowTable table;
  FlowEntry a;
  a.priority = 50;
  a.match = FlowMatch::anyToService(kService);
  a.actions = {OutputAction{1}};
  a.cookie = 1;
  FlowEntry b = a;
  b.match.inPort = 0;  // different match, same priority
  b.actions = {OutputAction{2}};
  b.cookie = 2;
  table.upsert(a, SimTime::zero());
  table.upsert(b, SimTime::zero());
  const auto* hit = table.peek(clientSyn(), 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, 1u);
}

TEST(FlowTableTest, UpsertReplacesSameMatchAndPriority) {
  FlowTable table;
  FlowEntry e;
  e.priority = 10;
  e.match = FlowMatch::anyToService(kService);
  e.actions = {OutputAction{1}};
  table.upsert(e, SimTime::zero());
  e.actions = {OutputAction{7}};
  table.upsert(e, 1_ms);
  EXPECT_EQ(table.size(), 1u);
  const auto* hit = table.peek(clientSyn(), 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(std::get<OutputAction>(hit->actions[0]).port, 7u);
}

TEST(FlowTableTest, LookupUpdatesStatsPeekDoesNot) {
  FlowTable table;
  FlowEntry e;
  e.priority = 1;
  e.match = FlowMatch::anyToService(kService);
  table.upsert(e, SimTime::zero());
  table.peek(clientSyn(), 0);
  EXPECT_EQ(table.entries()[0].stats.packets, 0u);
  table.lookup(clientSyn(), 0, 5_ms);
  EXPECT_EQ(table.entries()[0].stats.packets, 1u);
  EXPECT_EQ(table.entries()[0].stats.lastUsed, 5_ms);
  EXPECT_EQ(table.entries()[0].stats.bytes, clientSyn().wireSize().value);
}

TEST(FlowTableTest, IdleTimeoutExpiresOnlyStaleEntries) {
  FlowTable table;
  std::vector<std::pair<std::uint64_t, RemovalReason>> removed;
  table.setRemovalListener(
      [&](const FlowEntry& entry, RemovalReason reason) {
        removed.emplace_back(entry.cookie, reason);
      });
  FlowEntry e;
  e.priority = 1;
  e.match = FlowMatch::anyToService(kService);
  e.idleTimeout = 10_s;
  e.cookie = 42;
  e.notifyOnRemoval = true;
  table.upsert(e, SimTime::zero());

  table.lookup(clientSyn(), 0, 5_s);  // refresh lastUsed
  table.expire(14_s);                 // idle for 9 s only
  EXPECT_EQ(table.size(), 1u);
  table.expire(15_s);                 // idle for exactly 10 s
  EXPECT_EQ(table.size(), 0u);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].first, 42u);
  EXPECT_EQ(removed[0].second, RemovalReason::kIdleTimeout);
}

TEST(FlowTableTest, HardTimeoutBeatsIdle) {
  FlowTable table;
  std::optional<RemovalReason> reason;
  table.setRemovalListener(
      [&](const FlowEntry&, RemovalReason r) { reason = r; });
  FlowEntry e;
  e.priority = 1;
  e.match = FlowMatch::anyToService(kService);
  e.idleTimeout = 60_s;
  e.hardTimeout = 5_s;
  e.notifyOnRemoval = true;
  table.upsert(e, SimTime::zero());
  table.lookup(clientSyn(), 0, 4_s);
  table.expire(5_s);
  EXPECT_EQ(table.size(), 0u);
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, RemovalReason::kHardTimeout);
}

TEST(FlowTableTest, NoNotificationWithoutFlag) {
  FlowTable table;
  int notifications = 0;
  table.setRemovalListener(
      [&](const FlowEntry&, RemovalReason) { ++notifications; });
  FlowEntry e;
  e.priority = 1;
  e.match = FlowMatch::anyToService(kService);
  e.idleTimeout = 1_s;
  e.notifyOnRemoval = false;
  table.upsert(e, SimTime::zero());
  table.expire(2_s);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(notifications, 0);
}

TEST(FlowTableTest, RemoveByMatchAndCookie) {
  FlowTable table;
  FlowEntry e;
  e.priority = 1;
  e.match = FlowMatch::anyToService(kService);
  e.cookie = 7;
  table.upsert(e, SimTime::zero());
  FlowEntry f;
  f.priority = 2;
  f.match = FlowMatch::clientToService(kClient, kService);
  f.cookie = 7;
  table.upsert(f, SimTime::zero());

  EXPECT_EQ(table.remove(FlowMatch::anyToService(kService), 99), 0u);
  EXPECT_EQ(table.remove(FlowMatch::anyToService(kService), 7), 1u);
  EXPECT_EQ(table.removeByCookie(7), 1u);
  EXPECT_EQ(table.size(), 0u);
}

// Property: for random entry sets, lookup always returns an entry with
// maximal priority among all matching entries.
class TablePriorityProperty : public ::testing::TestWithParam<int> {};

TEST_P(TablePriorityProperty, LookupReturnsMaxMatchingPriority) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  FlowTable table;
  for (int i = 0; i < 50; ++i) {
    FlowEntry e;
    e.priority = static_cast<std::uint16_t>(rng.uniformInt(0, 20));
    if (rng.chance(0.5)) e.match.ipDst = kService.ip;
    if (rng.chance(0.5)) e.match.tcpDst = kService.port;
    if (rng.chance(0.3)) e.match.ipSrc = Ipv4(10, 0, 0, static_cast<std::uint8_t>(rng.uniformInt(1, 3)));
    e.cookie = static_cast<std::uint64_t>(i);
    table.upsert(e, SimTime::zero());
  }
  Packet p = clientSyn();
  p.ipSrc = Ipv4(10, 0, 0, static_cast<std::uint8_t>(rng.uniformInt(1, 3)));
  const auto* hit = table.peek(p, 0);
  std::optional<std::uint16_t> best;
  for (const auto& entry : table.entries()) {
    if (entry.match.matches(p, 0)) {
      best = std::max(best.value_or(0), entry.priority);
    }
  }
  if (best.has_value()) {
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->priority, *best);
  } else {
    EXPECT_EQ(hit, nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TablePriorityProperty, ::testing::Range(1, 26));

// ----------------------------------------------- switch + controller ----

/// Records packet-ins; installs nothing until told to.
class RecordingController : public ControllerApp {
 public:
  void onPacketIn(OpenFlowSwitch& sw, const PacketIn& event) override {
    packetIns.push_back(event);
    lastSwitch = &sw;
  }
  void onFlowRemoved(OpenFlowSwitch&, const FlowRemoved& event) override {
    flowRemovals.push_back(event);
  }

  std::vector<PacketIn> packetIns;
  std::vector<FlowRemoved> flowRemovals;
  OpenFlowSwitch* lastSwitch = nullptr;
};

class SwitchFixture : public ::testing::Test {
 protected:
  SwitchFixture()
      : sim_(21),
        net_(sim_),
        client_(net_, "client", kClient.ip, Mac(0x01)),
        edge_(net_, "edge", kInstance.ip, Mac(0x05)),
        cloud_(net_, "cloud", kService.ip, Mac(0x0c)),
        switch_(net_, "gnb") {
    clientPort_ = net_.connect(client_, switch_, 1_ms, 1_Gbps).portB;
    edgePort_ = net_.connect(switch_, edge_, 1_ms, 1_Gbps).portA;
    cloudPort_ = net_.connect(switch_, cloud_, 10_ms, 1_Gbps).portA;
    switch_.setController(&controller_);
  }

  /// Install the forward+reverse redirect flows for client->service.
  /// Matches are per client IP (not per ephemeral port): the client's
  /// source port is unknown until its SYN arrives.
  void installRedirect() {
    FlowEntry fwd;
    fwd.priority = 100;
    fwd.match = FlowMatch::anyToService(kService);
    fwd.match.ipSrc = kClient.ip;
    fwd.actions = {SetFieldAction::ipDst(kInstance.ip),
                   SetFieldAction::tcpDst(kInstance.port),
                   SetFieldAction::ethDst(edge_.mac()),
                   OutputAction{edgePort_}};
    FlowEntry rev;
    rev.priority = 100;
    rev.match.ipSrc = kInstance.ip;
    rev.match.tcpSrc = kInstance.port;
    rev.match.ipDst = kClient.ip;
    rev.match.ipProto = IpProto::kTcp;
    rev.actions = {SetFieldAction::ipSrc(kService.ip),
                   SetFieldAction::tcpSrc(kService.port),
                   SetFieldAction::ethSrc(Mac(0xcafe)),
                   OutputAction{clientPort_}};
    switch_.sendFlowMod(fwd);
    switch_.sendFlowMod(rev);
  }

  Simulation sim_;
  Network net_;
  Host client_;
  Host edge_;
  Host cloud_;
  RecordingController controller_;
  OpenFlowSwitch switch_;
  PortId clientPort_ = 0;
  PortId edgePort_ = 0;
  PortId cloudPort_ = 0;
};

TEST_F(SwitchFixture, TableMissBuffersAndNotifiesController) {
  std::optional<Result<HttpExchange>> got;
  client_.httpRequest(kService, HttpRequest{},
                      [&](Result<HttpExchange> r) { got = std::move(r); });
  sim_.runUntil(500_ms);
  ASSERT_EQ(controller_.packetIns.size(), 1u);
  EXPECT_EQ(controller_.packetIns[0].inPort, clientPort_);
  EXPECT_NE(controller_.packetIns[0].bufferId, kNoBuffer);
  EXPECT_TRUE(controller_.packetIns[0].packet.hasFlag(tcpflags::kSyn));
  EXPECT_EQ(switch_.bufferedPackets(), 1u);
  EXPECT_EQ(switch_.tableMissCount(), 1u);
  EXPECT_FALSE(got.has_value());  // still waiting
}

TEST_F(SwitchFixture, TransparentRedirectEndToEnd) {
  edge_.listen(kInstance.port, [](const HttpRequest&, HttpRespond respond) {
    HttpResponse resp;
    resp.body = "from-edge";
    respond(resp);
  });
  installRedirect();

  std::optional<Result<HttpExchange>> got;
  sim_.schedule(10_ms, [&] {  // after flows are installed
    client_.httpRequest(kService, HttpRequest{},
                        [&](Result<HttpExchange> r) { got = std::move(r); });
  });
  // The switch's expiry scanner runs forever; bound the run instead of
  // draining the queue.
  sim_.runUntil(5_s);

  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  EXPECT_EQ(got->value().response.body, "from-edge");
  // No packet ever reached the controller: flows matched everything.
  EXPECT_EQ(controller_.packetIns.size(), 0u);
  EXPECT_GE(switch_.matchedPackets(), 4u);
  // Client-perceived RTT is the edge RTT (≈4 ms), not the cloud path.
  EXPECT_LT(got->value().timings.timeTotal(), 10_ms);
}

TEST_F(SwitchFixture, PacketOutReleasesBufferedSyn) {
  edge_.listen(kInstance.port, [](const HttpRequest&, HttpRespond respond) {
    respond(HttpResponse{});
  });

  std::optional<Result<HttpExchange>> got;
  client_.httpRequest(kService, HttpRequest{},
                      [&](Result<HttpExchange> r) { got = std::move(r); });

  // Controller behaviour scripted by the test: when the packet-in arrives,
  // install flows, then packet-out the buffered SYN through the new path.
  sim_.schedule(50_ms, [&] {
    ASSERT_EQ(controller_.packetIns.size(), 1u);
    const auto& event = controller_.packetIns[0];
    installRedirect();
    const ActionList actions{SetFieldAction::ipDst(kInstance.ip),
                             SetFieldAction::tcpDst(kInstance.port),
                             OutputAction{edgePort_}};
    switch_.sendPacketOut(event.bufferId, event.packet, actions);
  });
  sim_.runUntil(5_s);

  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  EXPECT_EQ(switch_.bufferedPackets(), 0u);
  // Total ~50 ms controller hold + handshake.
  EXPECT_GE(got->value().timings.timeTotal(), 50_ms);
  EXPECT_LT(got->value().timings.timeTotal(), 70_ms);
}

TEST_F(SwitchFixture, FlowRemovedNotificationOnIdle) {
  FlowEntry e;
  e.priority = 10;
  e.match = FlowMatch::anyToService(kService);
  e.actions = {OutputAction{cloudPort_}};
  e.idleTimeout = 2_s;
  e.notifyOnRemoval = true;
  e.cookie = 77;
  switch_.sendFlowMod(e);
  sim_.runUntil(5_s);
  ASSERT_EQ(controller_.flowRemovals.size(), 1u);
  EXPECT_EQ(controller_.flowRemovals[0].entry.cookie, 77u);
  EXPECT_EQ(controller_.flowRemovals[0].reason, RemovalReason::kIdleTimeout);
  EXPECT_EQ(switch_.table().size(), 0u);
}

TEST_F(SwitchFixture, FlowRemoveDeletesEntries) {
  FlowEntry e;
  e.priority = 10;
  e.match = FlowMatch::anyToService(kService);
  e.actions = {OutputAction{cloudPort_}};
  switch_.sendFlowMod(e);
  sim_.runUntil(10_ms);
  EXPECT_EQ(switch_.table().size(), 1u);
  switch_.sendFlowRemove(FlowMatch::anyToService(kService));
  sim_.runUntil(20_ms);
  EXPECT_EQ(switch_.table().size(), 0u);
}

TEST_F(SwitchFixture, StalePacketOutIsIgnored) {
  std::optional<Result<HttpExchange>> got;
  RequestOptions options;
  options.synRto = 10_s;  // keep quiet during the test window
  client_.httpRequest(kService, HttpRequest{},
                      [&](Result<HttpExchange> r) { got = std::move(r); },
                      options);
  sim_.runUntil(100_ms);
  ASSERT_EQ(controller_.packetIns.size(), 1u);
  const auto event = controller_.packetIns[0];
  // Release once, then try to release the same buffer again.
  const ActionList actions{OutputAction{cloudPort_}};
  switch_.sendPacketOut(event.bufferId, event.packet, actions);
  switch_.sendPacketOut(event.bufferId, event.packet, actions);
  sim_.runUntil(200_ms);
  // Exactly one copy of the SYN reached the cloud host: the cloud refuses
  // (no listener) once.  Its RST comes back table-miss and is buffered,
  // so exactly one packet (the RST) sits in the buffer afterwards.
  EXPECT_EQ(cloud_.refusedConnections(), 1u);
  EXPECT_EQ(switch_.bufferedPackets(), 1u);
  EXPECT_EQ(controller_.packetIns.size(), 2u);
}

TEST_F(SwitchFixture, BufferEvictionUnderPressure) {
  // Shrink the buffer via a dedicated switch to exercise FIFO eviction.
  SwitchOptions options;
  options.maxBufferedPackets = 2;
  OpenFlowSwitch tiny(net_, "tiny", options);
  RecordingController rec;
  Host a(net_, "a", Ipv4(10, 1, 0, 1), Mac(0x11));
  const PortId aPort = net_.connect(a, tiny, 1_ms, 1_Gbps).portB;
  (void)aPort;
  tiny.setController(&rec);
  for (int i = 0; i < 4; ++i) {
    const Endpoint src(a.ip(), static_cast<std::uint16_t>(50000 + i));
    net_.transmit(a, 0, makeSyn(a.mac(), src, kService));
  }
  sim_.runUntil(1_s);
  EXPECT_EQ(rec.packetIns.size(), 4u);
  EXPECT_EQ(tiny.bufferedPackets(), 2u);  // two oldest evicted
  // The loss is signalled, not silent: each FIFO eviction is counted.
  EXPECT_EQ(tiny.bufferEvictions(), 2u);
  // The untouched default-sized switch never evicted.
  EXPECT_EQ(switch_.bufferEvictions(), 0u);
}

// ------------------------------------------------- flow-stats timing ----

TEST_F(SwitchFixture, FlowStatsSnapshotTakenAtRequestArrival) {
  // The request and any FlowMods ride the same ordered control channel:
  // a FlowMod sent BEFORE the stats request is in the snapshot, one sent
  // AFTER it is not -- even though both land before the reply is delivered.
  FlowEntry before;
  before.priority = 10;
  before.match = FlowMatch::anyToService(kService);
  before.actions = {OutputAction{cloudPort_}};
  before.cookie = 1;
  switch_.sendFlowMod(before);

  std::optional<std::vector<FlowEntry>> snapshot;
  switch_.requestFlowStats(
      [&](std::vector<FlowEntry> entries) { snapshot = std::move(entries); });

  FlowEntry after = before;
  after.priority = 20;
  after.cookie = 2;
  switch_.sendFlowMod(after);

  sim_.runUntil(10_ms);
  ASSERT_TRUE(snapshot.has_value());
  ASSERT_EQ(snapshot->size(), 1u);
  EXPECT_EQ((*snapshot)[0].cookie, 1u);
  // Both entries did land on the switch.
  EXPECT_EQ(switch_.table().size(), 2u);
}

TEST_F(SwitchFixture, FlowStatsSnapshotSurvivesMutationBeforeDelivery) {
  // The snapshot is a point-in-time copy taken when the request reaches
  // the switch; deleting the entry before the reply lands must not
  // retroactively empty it.
  FlowEntry e;
  e.priority = 10;
  e.match = FlowMatch::anyToService(kService);
  e.actions = {OutputAction{cloudPort_}};
  e.cookie = 42;
  switch_.sendFlowMod(e);
  sim_.runUntil(10_ms);

  std::optional<std::vector<FlowEntry>> snapshot;
  SimTime deliveredAt;
  switch_.requestFlowStats([&](std::vector<FlowEntry> entries) {
    snapshot = std::move(entries);
    deliveredAt = sim_.now();
  });
  // The remove is sent one channel latency later: it reaches the switch
  // after the snapshot was taken but before the reply is delivered.
  sim_.schedule(switch_.options().channelLatency / 2,
                [&] { switch_.sendFlowRemove(FlowMatch::anyToService(kService)); });
  sim_.runUntil(20_ms);

  ASSERT_TRUE(snapshot.has_value());
  ASSERT_EQ(snapshot->size(), 1u);
  EXPECT_EQ((*snapshot)[0].cookie, 42u);
  EXPECT_EQ(switch_.table().size(), 0u);  // the delete did happen
  // Reply paid the full round trip.
  EXPECT_GE(deliveredAt, 10_ms + switch_.options().channelLatency * 2);
}

// ------------------------------------------- flow-remove cookie match ----

TEST_F(SwitchFixture, FlowRemoveMatchesCookieExactly) {
  const FlowMatch match = FlowMatch::anyToService(kService);
  FlowEntry first;
  first.priority = 10;
  first.match = match;
  first.actions = {OutputAction{cloudPort_}};
  first.cookie = 7;
  FlowEntry second = first;
  second.priority = 20;  // distinct (match, priority) => both live
  second.cookie = 9;
  switch_.sendFlowMod(first);
  switch_.sendFlowMod(second);
  sim_.runUntil(10_ms);
  ASSERT_EQ(switch_.table().size(), 2u);

  // A mismatched cookie removes nothing.
  switch_.sendFlowRemove(match, 5);
  sim_.runUntil(20_ms);
  EXPECT_EQ(switch_.table().size(), 2u);

  // An exact cookie removes only its entry.
  switch_.sendFlowRemove(match, 9);
  sim_.runUntil(30_ms);
  ASSERT_EQ(switch_.table().size(), 1u);
  EXPECT_EQ(switch_.table().entries()[0].cookie, 7u);

  // Cookie 0 is the wildcard: removes regardless of cookie.
  switch_.sendFlowRemove(match, 0);
  sim_.runUntil(40_ms);
  EXPECT_EQ(switch_.table().size(), 0u);
}

}  // namespace
}  // namespace edgesim::openflow
