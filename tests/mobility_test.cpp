// Mobility & transparent handover suite (`ctest -L mobility`):
//
//   * waypoint interpolation + the seeded path generators (pure functions
//     of their params -- determinism is asserted, not assumed);
//   * MobilityModel nearest-station / cluster-rank geometry;
//   * AttachmentManager change detection and its ProximityProvider view;
//   * the controller's handover state machine (idle -> re-steer -> settle):
//     warm re-steer within one rule-install RTT, cold deploy-then-re-steer,
//     degrade-to-cloud on governor veto and on deploy failure, scale-down
//     of the vacated instance, exact accounting
//       handoversStarted == handoversCompleted + handoversAbortedToCloud;
//   * the full commute-wave loop through HandoverManager.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/testbed.hpp"
#include "fault/fault_plan.hpp"
#include "mobility/attachment.hpp"
#include "mobility/handover.hpp"
#include "mobility/mobility_model.hpp"
#include "workload/mobility_paths.hpp"

namespace edgesim::mobility {
namespace {

using namespace timeliterals;
using core::ClusterMode;
using core::EdgeController;
using edgesim::Endpoint;
using core::HandoverResult;
using core::Testbed;
using core::TestbedOptions;
using workload::CommuteWaveParams;
using workload::MobilityPath;
using workload::Position;
using workload::RandomWaypointParams;
using workload::StadiumEgressParams;
using workload::Waypoint;

const Endpoint kNginxAddr{Ipv4(203, 0, 113, 10), 80};

Ipv4 clientIp(std::size_t index) {
  return Ipv4(10, 0, 2, static_cast<std::uint8_t>(index + 1));
}

double dist(Position a, Position b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

// ---- waypoint interpolation ------------------------------------------------

TEST(PathInterpolation, ClampsOutsideTheTimeRange) {
  MobilityPath path;
  path.waypoints = {{1_s, {0.0, 0.0}}, {3_s, {100.0, 50.0}}};
  EXPECT_DOUBLE_EQ(path.positionAt(SimTime::zero()).x, 0.0);
  EXPECT_DOUBLE_EQ(path.positionAt(500_ms).y, 0.0);
  EXPECT_DOUBLE_EQ(path.positionAt(10_s).x, 100.0);
  EXPECT_DOUBLE_EQ(path.positionAt(10_s).y, 50.0);
}

TEST(PathInterpolation, LinearBetweenWaypoints) {
  MobilityPath path;
  path.waypoints = {{1_s, {0.0, 0.0}}, {3_s, {100.0, 50.0}}};
  const Position mid = path.positionAt(2_s);
  EXPECT_DOUBLE_EQ(mid.x, 50.0);
  EXPECT_DOUBLE_EQ(mid.y, 25.0);
  const Position quarter = path.positionAt(1_s + 500_ms);
  EXPECT_DOUBLE_EQ(quarter.x, 25.0);
  EXPECT_DOUBLE_EQ(quarter.y, 12.5);
}

TEST(PathInterpolation, HitsWaypointsExactly) {
  MobilityPath path;
  path.waypoints = {{0_s, {1.0, 2.0}}, {2_s, {3.0, 4.0}}, {5_s, {5.0, 6.0}}};
  EXPECT_DOUBLE_EQ(path.positionAt(2_s).x, 3.0);
  EXPECT_DOUBLE_EQ(path.positionAt(2_s).y, 4.0);
}

// ---- seeded generators -----------------------------------------------------

TEST(PathGenerators, CommuteWaveIsDeterministicPerSeed) {
  CommuteWaveParams params;
  params.seed = 42;
  params.clients = 8;
  const auto a = commuteWavePaths(params);
  const auto b = commuteWavePaths(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].waypoints.size(), b[i].waypoints.size());
    for (std::size_t w = 0; w < a[i].waypoints.size(); ++w) {
      EXPECT_EQ(a[i].waypoints[w].at, b[i].waypoints[w].at);
      EXPECT_DOUBLE_EQ(a[i].waypoints[w].pos.x, b[i].waypoints[w].pos.x);
      EXPECT_DOUBLE_EQ(a[i].waypoints[w].pos.y, b[i].waypoints[w].pos.y);
    }
  }
  params.seed = 43;
  const auto c = commuteWavePaths(params);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].waypoints.back().pos.x != c[i].waypoints.back().pos.x;
  }
  EXPECT_TRUE(differs) << "different seeds must move clients differently";
}

TEST(PathGenerators, CommuteWaveTravelsOriginToDestination) {
  CommuteWaveParams params;
  params.seed = 7;
  params.clients = 10;
  params.origin = {0.0, 0.0};
  params.destination = {1000.0, 0.0};
  params.scatterRadius = 50.0;
  const auto paths = commuteWavePaths(params);
  ASSERT_EQ(paths.size(), params.clients);
  for (const auto& path : paths) {
    EXPECT_LE(dist(path.waypoints.front().pos, params.origin),
              params.scatterRadius + 1e-9);
    EXPECT_LE(dist(path.waypoints.back().pos, params.destination),
              params.scatterRadius + 1e-9);
    EXPECT_GE(path.waypoints[1].at, params.firstDeparture);
    EXPECT_LE(path.waypoints[1].at,
              params.firstDeparture + params.departureWindow);
  }
}

TEST(PathGenerators, StadiumEgressDisperses) {
  StadiumEgressParams params;
  params.seed = 11;
  params.clients = 12;
  params.stadium = {500.0, 500.0};
  const auto paths = stadiumEgressPaths(params);
  ASSERT_EQ(paths.size(), params.clients);
  for (const auto& path : paths) {
    EXPECT_DOUBLE_EQ(path.waypoints.front().pos.x, params.stadium.x);
    const double home = dist(path.waypoints.back().pos, params.stadium);
    EXPECT_GE(home, params.minHomeDistance - 1e-9);
    EXPECT_LE(home, params.maxHomeDistance + 1e-9);
    EXPECT_GE(path.waypoints[1].at, params.eventEnd);
  }
}

TEST(PathGenerators, RandomWaypointStaysInsideTheArea) {
  RandomWaypointParams params;
  params.seed = 3;
  params.clients = 6;
  params.width = 800.0;
  params.height = 600.0;
  params.duration = 30_s;
  const auto paths = randomWaypointPaths(params);
  ASSERT_EQ(paths.size(), params.clients);
  for (const auto& path : paths) {
    ASSERT_GE(path.waypoints.size(), 2u);
    EXPECT_GE(path.waypoints.back().at, params.duration);
    for (const Waypoint& wp : path.waypoints) {
      EXPECT_GE(wp.pos.x, 0.0);
      EXPECT_LE(wp.pos.x, params.width);
      EXPECT_GE(wp.pos.y, 0.0);
      EXPECT_LE(wp.pos.y, params.height);
    }
  }
}

// ---- MobilityModel geometry ------------------------------------------------

std::vector<BaseStation> twoStations() {
  return {{"bs-egs", {0.0, 0.0}, "docker-egs"},
          {"bs-far", {1000.0, 0.0}, "docker-far"}};
}

TEST(MobilityModelTest, NearestStationBreaksTiesTowardLowestIndex) {
  MobilityModel model(twoStations());
  EXPECT_EQ(model.nearestStationIndex({100.0, 0.0}), 0u);
  EXPECT_EQ(model.nearestStationIndex({900.0, 0.0}), 1u);
  // Exactly halfway: deterministic tie-break toward station 0.
  EXPECT_EQ(model.nearestStationIndex({500.0, 0.0}), 0u);
}

TEST(MobilityModelTest, ClusterRanksFollowStationGeometry) {
  MobilityModel model(twoStations());
  EXPECT_EQ(model.clusterRankFrom(0, "docker-egs"), 0);
  EXPECT_EQ(model.clusterRankFrom(0, "docker-far"), 1);
  EXPECT_EQ(model.clusterRankFrom(1, "docker-far"), 0);
  EXPECT_EQ(model.clusterRankFrom(1, "docker-egs"), 1);
  // The cloud is served by no station: "no opinion", keep static ranks.
  EXPECT_EQ(model.clusterRankFrom(0, "cloud"), -1);
}

// ---- AttachmentManager -----------------------------------------------------

MobilityPath hopPath(SimTime when, Position from, Position to) {
  MobilityPath path;
  path.waypoints = {{SimTime::zero(), from}, {when, from}, {when + 1_s, to}};
  return path;
}

TEST(AttachmentTest, DetectsAttachmentChanges) {
  Simulation sim;
  MobilityModel model(twoStations());
  const Ipv4 client = clientIp(0);
  model.setPath(client, hopPath(2_s, {0.0, 0.0}, {1000.0, 0.0}));

  AttachmentManager manager(sim, model, {.scanPeriod = 100_ms});
  struct Change {
    bool initial;
    std::string to;
  };
  std::vector<Change> changes;
  manager.setChangeListener(
      [&](Ipv4 who, const BaseStation* from, const BaseStation& to) {
        EXPECT_EQ(who, client);
        changes.push_back({from == nullptr, to.name});
      });
  manager.start();
  ASSERT_NE(manager.attachmentOf(client), nullptr);
  EXPECT_EQ(manager.attachmentOf(client)->name, "bs-egs");

  sim.runUntil(10_s);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_TRUE(changes[0].initial);
  EXPECT_EQ(changes[0].to, "bs-egs");
  EXPECT_FALSE(changes[1].initial);
  EXPECT_EQ(changes[1].to, "bs-far");
  EXPECT_EQ(manager.attachmentChanges(), 2u);
  EXPECT_EQ(manager.attachmentOf(client)->cluster, "docker-far");
}

TEST(AttachmentTest, ProximityRanksTrackTheClient) {
  Simulation sim;
  MobilityModel model(twoStations());
  const Ipv4 client = clientIp(0);
  model.setPath(client, hopPath(2_s, {0.0, 0.0}, {1000.0, 0.0}));
  AttachmentManager manager(sim, model, {.scanPeriod = 100_ms});

  // Before any scan: no attachment, no opinion.
  EXPECT_EQ(manager.distanceRank(client, "docker-egs"), -1);
  manager.start();
  EXPECT_EQ(manager.distanceRank(client, "docker-egs"), 0);
  EXPECT_EQ(manager.distanceRank(client, "docker-far"), 1);
  EXPECT_EQ(manager.distanceRank(client, "cloud"), -1);

  sim.runUntil(10_s);
  EXPECT_EQ(manager.distanceRank(client, "docker-egs"), 1);
  EXPECT_EQ(manager.distanceRank(client, "docker-far"), 0);
  // A client the model does not know keeps static ranks too.
  EXPECT_EQ(manager.distanceRank(clientIp(9), "docker-egs"), -1);
}

// ---- handover state machine ------------------------------------------------

struct HandoverBed {
  explicit HandoverBed(TestbedOptions options = makeOptions())
      : bed(std::move(options)) {
    bed.warmImageCache("nginx");
    EXPECT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  }

  static TestbedOptions makeOptions() {
    TestbedOptions options;
    options.seed = 5;
    options.clientCount = 4;
    options.clusterMode = ClusterMode::kDockerOnly;
    options.farEdge = true;
    return options;
  }

  /// Run the simulation in small steps until `pred()` holds (or `budget`
  /// sim-time passes).  Keeps tests well under the 60 s memorized-flow
  /// idle timeout instead of fast-forwarding past it.
  template <typename Pred>
  bool runUntilTrue(Pred pred, SimTime budget = 30_s) {
    const SimTime deadline = bed.sim().now() + budget;
    while (!pred() && bed.sim().now() < deadline) {
      bed.sim().runUntil(bed.sim().now() + 100_ms);
    }
    return pred();
  }

  /// Establish a memorized flow for client `index` (lands on docker-egs,
  /// the nearest cluster by static rank).
  void establishFlow(std::size_t index) {
    bool done = false;
    bed.requestCatalog(index, "nginx", kNginxAddr, "establish",
                       [&](Result<HttpExchange> r) {
                         EXPECT_TRUE(r.ok());
                         done = true;
                       });
    EXPECT_TRUE(runUntilTrue([&] { return done; }));
  }

  SimTime ruleInstallRtt() {
    return bed.ovs().options().channelLatency +
           bed.ovs().options().channelLatency;
  }

  Testbed bed;
};

TEST(HandoverTest, WarmReSteerBoundedByOneRuleInstallRtt) {
  HandoverBed h;
  // Pre-deploy at the target so the handover is warm.
  ASSERT_TRUE(h.bed.controller().predeploy(kNginxAddr, "docker-far").ok());
  h.bed.sim().runUntil(60_s);
  ASSERT_FALSE(h.bed.farEdgeAdapter()->readyInstances(
      *h.bed.controller().serviceAt(kNginxAddr)).empty());
  h.establishFlow(0);
  const auto before = h.bed.controller().flowMemory().lookup(clientIp(0),
                                                             kNginxAddr);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->cluster, "docker-egs");

  std::optional<HandoverResult> result;
  h.bed.controller().requestHandover(
      clientIp(0), kNginxAddr, "docker-far",
      [&](const HandoverResult& r) { result = r; });
  h.bed.sim().runUntil(h.bed.sim().now() + 5_s);

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->started);
  EXPECT_TRUE(result->completed);
  EXPECT_FALSE(result->abortedToCloud);
  EXPECT_EQ(result->cluster, "docker-far");
  EXPECT_STREQ(result->reason, "warm");
  // The continuity gap is the flow-stats confirmation round trip: exactly
  // one rule-install RTT, never a cold deploy.
  EXPECT_GT(result->continuityGap, SimTime::zero());
  EXPECT_LE(result->continuityGap, h.ruleInstallRtt());
  EXPECT_GE(result->latency, result->continuityGap);

  // FlowMemory was re-bound; the client's next request is warm and served
  // by the far-edge instance end to end.
  const auto after = h.bed.controller().flowMemory().lookup(clientIp(0),
                                                            kNginxAddr);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->cluster, "docker-far");
  bool served = false;
  h.bed.requestCatalog(0, "nginx", kNginxAddr, "after-handover",
                       [&](Result<HttpExchange> r) {
                         EXPECT_TRUE(r.ok());
                         served = true;
                       });
  h.bed.sim().runUntil(h.bed.sim().now() + 10_s);
  EXPECT_TRUE(served);

  EXPECT_EQ(h.bed.controller().handoversStarted(), 1u);
  EXPECT_EQ(h.bed.controller().handoversCompleted(), 1u);
  EXPECT_EQ(h.bed.controller().handoversAbortedToCloud(), 0u);
}

TEST(HandoverTest, ColdHandoverDeploysTheTargetFirst) {
  HandoverBed h;
  h.establishFlow(0);

  std::optional<HandoverResult> result;
  h.bed.controller().requestHandover(
      clientIp(0), kNginxAddr, "docker-far",
      [&](const HandoverResult& r) { result = r; });
  ASSERT_TRUE(h.runUntilTrue([&] { return result.has_value(); }, 120_s));

  EXPECT_TRUE(result->completed);
  EXPECT_STREQ(result->reason, "deployed");
  EXPECT_EQ(result->cluster, "docker-far");
  // The deploy happens BEFORE the re-steer commits (the old instance keeps
  // serving), so the continuity gap stays one rule-install RTT while the
  // total handover latency includes the deployment.
  EXPECT_LE(result->continuityGap, h.ruleInstallRtt());
  EXPECT_GT(result->latency, h.ruleInstallRtt());
}

TEST(HandoverTest, NoOpWithoutMemorizedFlow) {
  HandoverBed h;
  std::optional<HandoverResult> result;
  h.bed.controller().requestHandover(
      clientIp(2), kNginxAddr, "docker-far",
      [&](const HandoverResult& r) { result = r; });
  h.bed.sim().runUntil(1_s);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->started);
  EXPECT_STREQ(result->reason, "no-memorized-flow");
  EXPECT_EQ(h.bed.controller().handoversStarted(), 0u);
}

TEST(HandoverTest, NoOpWhenAlreadyOnTheTarget) {
  HandoverBed h;
  h.establishFlow(0);
  std::optional<HandoverResult> result;
  h.bed.controller().requestHandover(
      clientIp(0), kNginxAddr, "docker-egs",
      [&](const HandoverResult& r) { result = r; });
  h.bed.sim().runUntil(h.bed.sim().now() + 1_s);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->started);
  EXPECT_STREQ(result->reason, "already-on-target");
  EXPECT_EQ(h.bed.controller().handoversStarted(), 0u);
}

TEST(HandoverTest, DeployFailureDegradesToCloud) {
  TestbedOptions options = HandoverBed::makeOptions();
  options.controller.deployRetries = 1;
  options.controller.retryBackoff = 50_ms;
  HandoverBed h(options);

  fault::FaultPlan plan(17);
  fault::FaultSpec spec;
  spec.site = fault::FaultSite::kClusterRpc;
  spec.target = "docker-far";  // every phase on the target fails, forever
  plan.add(spec);
  h.bed.injectFaults(plan);

  h.establishFlow(0);
  std::optional<HandoverResult> result;
  h.bed.controller().requestHandover(
      clientIp(0), kNginxAddr, "docker-far",
      [&](const HandoverResult& r) { result = r; });
  ASSERT_TRUE(h.runUntilTrue([&] { return result.has_value(); }, 120_s));

  EXPECT_TRUE(result->started);
  EXPECT_FALSE(result->completed);
  EXPECT_TRUE(result->abortedToCloud);
  EXPECT_STREQ(result->reason, "deploy-failed");
  EXPECT_EQ(result->cluster, "cloud");
  // Never stranded: the flow now points at the cloud instance.
  const auto flow = h.bed.controller().flowMemory().lookup(clientIp(0),
                                                           kNginxAddr);
  ASSERT_TRUE(flow.has_value());
  EXPECT_EQ(flow->cluster, "cloud");
  EXPECT_EQ(h.bed.controller().handoversStarted(), 1u);
  EXPECT_EQ(h.bed.controller().handoversCompleted(), 0u);
  EXPECT_EQ(h.bed.controller().handoversAbortedToCloud(), 1u);
}

TEST(HandoverTest, GovernorVetoDegradesToCloud) {
  TestbedOptions options = HandoverBed::makeOptions();
  options.controller.overload.enabled = true;
  HandoverBed h(options);
  h.establishFlow(0);

  // Trip the target cluster's breaker open: a handover INTO a sick cluster
  // must degrade to the cloud instead.
  auto& breaker = h.bed.governor()->breaker("docker-far");
  for (int i = 0; i < 10; ++i) breaker.recordFailure(h.bed.sim().now());
  ASSERT_EQ(breaker.state(h.bed.sim().now()), overload::BreakerState::kOpen);

  std::optional<HandoverResult> result;
  h.bed.controller().requestHandover(
      clientIp(0), kNginxAddr, "docker-far",
      [&](const HandoverResult& r) { result = r; });
  h.bed.sim().runUntil(h.bed.sim().now() + 5_s);

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->abortedToCloud);
  EXPECT_STREQ(result->reason, "governor-vetoed-target");
  EXPECT_EQ(result->cluster, "cloud");
  EXPECT_EQ(h.bed.controller().handoversAbortedToCloud(), 1u);
}

TEST(HandoverTest, ScalesDownTheVacatedInstance) {
  HandoverBed h;
  ASSERT_TRUE(h.bed.controller().predeploy(kNginxAddr, "docker-far").ok());
  h.bed.sim().runUntil(60_s);
  h.establishFlow(0);
  const core::ServiceModel* service = h.bed.controller().serviceAt(kNginxAddr);
  ASSERT_NE(service, nullptr);
  ASSERT_FALSE(h.bed.dockerAdapter()->readyInstances(*service).empty());

  const std::uint64_t scaleDownsBefore = h.bed.controller().scaleDowns();
  std::optional<HandoverResult> result;
  h.bed.controller().requestHandover(
      clientIp(0), kNginxAddr, "docker-far",
      [&](const HandoverResult& r) { result = r; });
  h.bed.sim().runUntil(h.bed.sim().now() + 30_s);

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->completed);
  // The last flow left docker-egs with the handover: the vacated instance
  // is scaled down (idle -> re-steer -> settle -> scale-down).
  EXPECT_EQ(h.bed.controller().scaleDowns(), scaleDownsBefore + 1);
  EXPECT_TRUE(h.bed.dockerAdapter()->readyInstances(*service).empty());
}

TEST(HandoverTest, AccountingStaysExactAcrossAMix) {
  HandoverBed h;
  ASSERT_TRUE(h.bed.controller().predeploy(kNginxAddr, "docker-far").ok());
  h.bed.sim().runUntil(60_s);
  h.establishFlow(0);
  h.establishFlow(1);

  // Trip the far cluster AFTER one warm handover already landed there.
  std::size_t callbacks = 0;
  const auto count = [&](const HandoverResult&) { ++callbacks; };
  h.bed.controller().requestHandover(clientIp(0), kNginxAddr, "docker-far",
                                     count);
  h.bed.controller().requestHandover(clientIp(1), kNginxAddr, "no-such-cluster",
                                     count);
  h.bed.sim().runUntil(h.bed.sim().now() + 10_s);

  EXPECT_EQ(callbacks, 2u);
  const EdgeController& c = h.bed.controller();
  EXPECT_EQ(c.handoversStarted(), 2u);
  EXPECT_EQ(c.handoversCompleted(), 1u);
  EXPECT_EQ(c.handoversAbortedToCloud(), 1u);
  EXPECT_EQ(c.handoversStarted(),
            c.handoversCompleted() + c.handoversAbortedToCloud());
}

// ---- the full mobility loop ------------------------------------------------

TEST(MobilityIntegration, CommuteWaveMovesFlowsToTheFarEdge) {
  HandoverBed h;
  ASSERT_TRUE(h.bed.controller().predeploy(kNginxAddr, "docker-far").ok());
  h.bed.sim().runUntil(60_s);

  MobilityModel model(twoStations());
  CommuteWaveParams wave;
  wave.seed = 9;
  wave.clients = 3;
  wave.origin = {0.0, 0.0};
  wave.destination = {1000.0, 0.0};
  wave.scatterRadius = 50.0;
  wave.firstDeparture = 65_s;
  wave.departureWindow = 5_s;
  wave.travelTime = 5_s;
  const auto paths = commuteWavePaths(wave);
  for (std::size_t i = 0; i < wave.clients; ++i) {
    model.setPath(clientIp(i), paths[i]);
  }

  AttachmentManager attachments(h.bed.sim(), model, {.scanPeriod = 250_ms});
  HandoverManager handovers(h.bed.controller(), attachments);
  std::size_t completed = 0;
  handovers.setResultListener([&](Ipv4, const HandoverResult& r) {
    if (r.completed) ++completed;
  });
  handovers.start();

  for (std::size_t i = 0; i < wave.clients; ++i) h.establishFlow(i);
  for (std::size_t i = 0; i < wave.clients; ++i) {
    const auto flow =
        h.bed.controller().flowMemory().lookup(clientIp(i), kNginxAddr);
    ASSERT_TRUE(flow.has_value());
    EXPECT_EQ(flow->cluster, "docker-egs");
  }

  // Let the wave play out: every client walks from the EGS cell to the
  // far-edge cell; the attachment scan detects it and the handover manager
  // re-steers each memorized flow.
  ASSERT_TRUE(
      h.runUntilTrue([&] { return completed == wave.clients; }, 60_s));

  EXPECT_EQ(completed, wave.clients);
  EXPECT_EQ(h.bed.controller().handoversCompleted(), wave.clients);
  EXPECT_EQ(h.bed.controller().handoversStarted(),
            h.bed.controller().handoversCompleted() +
                h.bed.controller().handoversAbortedToCloud());
  for (std::size_t i = 0; i < wave.clients; ++i) {
    const auto flow =
        h.bed.controller().flowMemory().lookup(clientIp(i), kNginxAddr);
    ASSERT_TRUE(flow.has_value());
    EXPECT_EQ(flow->cluster, "docker-far");
  }

  // Moved clients stay served -- transparently, through the same address.
  bool served = false;
  h.bed.requestCatalog(0, "nginx", kNginxAddr, "post-move",
                       [&](Result<HttpExchange> r) {
                         EXPECT_TRUE(r.ok());
                         served = true;
                       });
  h.bed.sim().runUntil(h.bed.sim().now() + 10_s);
  EXPECT_TRUE(served);

  // Telemetry: the lazily-registered handover series are now live.
  const auto snap = h.bed.telemetry().snapshot(h.bed.sim().now().toSeconds());
  EXPECT_EQ(snap.counterTotal("edgesim_handovers_total"),
            h.bed.controller().handoversStarted() +
                h.bed.controller().handoversCompleted() +
                h.bed.controller().handoversAbortedToCloud());
}

}  // namespace
}  // namespace edgesim::mobility
