// End-to-end integration tests on the full testbed (fig. 8): transparent
// redirection, on-demand deployment with and without waiting, FlowMemory
// reuse, idle scale-down, cloud forwarding, the Docker-vs-K8s timing shape
// of fig. 11, and failure paths.
#include <gtest/gtest.h>

#include <optional>

#include "core/testbed.hpp"

namespace edgesim::core {
namespace {

using namespace timeliterals;

const Endpoint kNginxAddr{Ipv4(203, 0, 113, 10), 80};
const Endpoint kAsmAddr{Ipv4(203, 0, 113, 11), 80};
const Endpoint kResnetAddr{Ipv4(203, 0, 113, 12), 80};

TEST(Integration, FirstRequestDockerCachedUnderOneSecond) {
  // The paper's headline: on-demand deployment with waiting, image cached,
  // Docker cluster -> first response in ~0.5 s for nginx.
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "first",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(30_s);

  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  const double total = got->value().timings.timeTotal().toSeconds();
  EXPECT_GT(total, 0.3);
  EXPECT_LT(total, 1.0);  // "as low as 0.5 seconds"
  EXPECT_EQ(bed.controller().requestsResolved(), 1u);
}

TEST(Integration, FirstRequestK8sCachedAroundThreeSeconds) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kK8sOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "first",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(60_s);

  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  const double total = got->value().timings.timeTotal().toSeconds();
  EXPECT_GT(total, 1.8);
  EXPECT_LT(total, 4.5);  // "around three seconds"
}

TEST(Integration, DockerVsK8sShapeMatchesFig11) {
  // Same service, same cached image: K8s must cost a small multiple of
  // Docker (the fig. 11 shape), not the other way round.
  auto measure = [](ClusterMode mode) {
    TestbedOptions options;
    options.clusterMode = mode;
    Testbed bed(options);
    EXPECT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
    bed.warmImageCache("nginx");
    double total = -1;
    bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                       [&](Result<HttpExchange> r) {
                         ASSERT_TRUE(r.ok());
                         total = r.value().timings.timeTotal().toSeconds();
                       });
    bed.sim().runUntil(60_s);
    return total;
  };
  const double docker = measure(ClusterMode::kDockerOnly);
  const double k8s = measure(ClusterMode::kK8sOnly);
  ASSERT_GT(docker, 0);
  ASSERT_GT(k8s, 0);
  EXPECT_GT(k8s / docker, 2.0);
  EXPECT_LT(k8s / docker, 12.0);
}

TEST(Integration, RedirectionIsTransparentToClient) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(30_s);
  ASSERT_TRUE(got.has_value() && got->ok());
  // The client only ever saw the registered cloud address; the edge
  // instance endpoint differs from it (rewriting happened) yet the
  // connection key at the client was the service address. Verify the edge
  // served it: the EGS runtime started a container, and the response came
  // back far faster than a cloud round trip would allow after deployment.
  EXPECT_GE(bed.dockerEngine().runtime().startedCount(), 1u);
}

TEST(Integration, SecondRequestServedWarmAndFast) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  std::optional<double> first;
  std::optional<double> second;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) {
                       ASSERT_TRUE(r.ok());
                       first = r.value().timings.timeTotal().toSeconds();
                     });
  bed.sim().schedule(5_s, [&] {
    bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                       [&](Result<HttpExchange> r) {
                         ASSERT_TRUE(r.ok());
                         second = r.value().timings.timeTotal().toSeconds();
                       });
  });
  bed.sim().runUntil(30_s);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // Warm path: flows already installed (or re-installed from FlowMemory);
  // ~1 ms total (fig. 16) vs. hundreds of ms for the first request.
  EXPECT_LT(*second, 0.05);
  EXPECT_GT(*first / *second, 20.0);
}

TEST(Integration, DifferentClientReusesRunningInstance) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  bed.requestCatalog(0, "nginx", kNginxAddr, "first");
  std::optional<double> other;
  bed.sim().schedule(5_s, [&] {
    bed.requestCatalog(7, "nginx", kNginxAddr, "other",
                       [&](Result<HttpExchange> r) {
                         ASSERT_TRUE(r.ok());
                         other = r.value().timings.timeTotal().toSeconds();
                       });
  });
  bed.sim().runUntil(30_s);
  ASSERT_TRUE(other.has_value());
  // New client, no memorized flow -> packet-in -> scheduler finds the
  // running instance -> fast redirect without a new deployment.
  EXPECT_LT(*other, 0.1);
  EXPECT_EQ(bed.dockerEngine().runtime().startedCount(), 1u);
}

TEST(Integration, UnregisteredServiceForwardedToCloud) {
  Testbed bed;
  // The cloud host itself answers on port 8080 (some unregistered app).
  bed.cloud().listen(8080, [](const HttpRequest&, HttpRespond respond) {
    HttpResponse resp;
    resp.body = "cloud";
    respond(resp);
  });
  std::optional<Result<HttpExchange>> got;
  bed.request(0, Endpoint(bed.cloud().ip(), 8080), "cloud",
              HttpMethod::kGet, Bytes{0},
              [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(10_s);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  EXPECT_EQ(got->value().response.body, "cloud");
  // WAN RTTs dominate: ~2 x 25 ms x (SYN + request) plus controller hop.
  EXPECT_GT(got->value().timings.timeTotal().toSeconds(), 0.09);
}

TEST(Integration, WithoutWaitingUsesFarEdgeThenMigrates) {
  // fig. 3: latency-first scheduler, instance running at the far edge,
  // nothing at the near edge.  First request -> far instance (fast);
  // background deployment near; later request -> near instance.
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.farEdge = true;
  options.controller.scheduler = "latency-first";
  // Short memory timeout so the migration can happen quickly.
  options.controller.memoryIdleTimeout = 2_s;
  options.controller.switchIdleTimeout = 1_s;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  // Start an instance at the far edge first (e.g. deployed for another
  // client earlier).
  const ServiceModel* model = bed.controller().serviceAt(kNginxAddr);
  ASSERT_NE(model, nullptr);
  bool farReady = false;
  bed.controller().dispatcher().ensureReady(
      *model, *bed.farEdgeAdapter(),
      [&](Result<Endpoint> r) { farReady = r.ok(); });
  bed.sim().runUntil(5_s);
  ASSERT_TRUE(farReady);

  std::optional<double> first;
  bed.requestCatalog(0, "nginx", kNginxAddr, "first",
                     [&](Result<HttpExchange> r) {
                       ASSERT_TRUE(r.ok());
                       first = r.value().timings.timeTotal().toSeconds();
                     });
  bed.sim().runUntil(10_s);
  ASSERT_TRUE(first.has_value());
  // Served by the far instance immediately (~10 ms RTT), NOT after a
  // sub-second deployment wait.
  EXPECT_LT(*first, 0.1);

  // Background deployment landed on the near EGS.
  bed.sim().runUntil(15_s);
  EXPECT_GE(bed.dockerEngine().runtime().startedCount(), 1u);

  // After the memorized flow expires, the same client is redirected to the
  // (now running) near instance.
  std::optional<double> later;
  bed.sim().schedule(1_s, [&] {
    bed.requestCatalog(0, "nginx", kNginxAddr, "later",
                       [&](Result<HttpExchange> r) {
                         ASSERT_TRUE(r.ok());
                         later = r.value().timings.timeTotal().toSeconds();
                       });
  });
  bed.sim().runUntil(30_s);
  ASSERT_TRUE(later.has_value());
  EXPECT_LT(*later, 0.05);  // near edge: ~2 ms RTT, no deployment
}

TEST(Integration, MigrationHappensAsSoonAsBestInstanceRuns) {
  // §IV-A2: "future requests to the same service are redirected to this
  // optimal location AS SOON AS the new instance is running" -- without
  // waiting for the controller's memory timeout.
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.farEdge = true;
  options.controller.scheduler = "latency-first";
  options.controller.memoryIdleTimeout = 600_s;  // would pin for 10 min
  options.controller.switchIdleTimeout = 1_s;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  const ServiceModel* model = bed.controller().serviceAt(kNginxAddr);
  bool farReady = false;
  bed.controller().dispatcher().ensureReady(
      *model, *bed.farEdgeAdapter(),
      [&](Result<Endpoint> r) { farReady = r.ok(); });
  bed.sim().runUntil(5_s);
  ASSERT_TRUE(farReady);

  bed.requestCatalog(0, "nginx", kNginxAddr, "first");
  bed.sim().runUntil(10_s);  // background deployment lands on the near EGS
  EXPECT_EQ(bed.controller().migrations(), 1u);

  // The client's memorized flow to the far edge was dropped despite the
  // long memory timeout; the next request re-schedules onto the near EGS.
  std::optional<Result<HttpExchange>> second;
  bed.requestCatalog(0, "nginx", kNginxAddr, "second",
                     [&](Result<HttpExchange> r) { second = std::move(r); });
  bed.sim().runUntil(20_s);
  ASSERT_TRUE(second.has_value() && second->ok());
  const auto flow =
      bed.controller().flowMemory().lookup(bed.client(0).ip(), kNginxAddr);
  ASSERT_TRUE(flow.has_value());
  EXPECT_EQ(flow->cluster, "docker-egs");
  EXPECT_EQ(flow->instance.ip, bed.egs().ip());
}

TEST(Integration, IdleServiceScaledDownAndRedeployedOnDemand) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.memoryIdleTimeout = 3_s;
  options.controller.switchIdleTimeout = 1_s;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  std::optional<bool> firstOk;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { firstOk = r.ok(); });
  bed.sim().runUntil(20_s);  // idle >> memoryIdleTimeout by now
  ASSERT_TRUE(firstOk.has_value() && *firstOk);
  EXPECT_GE(bed.controller().scaleDowns(), 1u);
  // Instance is gone from the edge.
  ASSERT_NE(bed.dockerAdapter(), nullptr);
  const ServiceModel* model = bed.controller().serviceAt(kNginxAddr);
  EXPECT_TRUE(bed.dockerAdapter()->readyInstances(*model).empty());

  // A new request triggers a fresh on-demand scale-up (not a full create:
  // the containers still exist, stopped).
  std::optional<double> again;
  bed.requestCatalog(3, "nginx", kNginxAddr, "again",
                     [&](Result<HttpExchange> r) {
                       ASSERT_TRUE(r.ok());
                       again = r.value().timings.timeTotal().toSeconds();
                     });
  bed.sim().runUntil(40_s);
  ASSERT_TRUE(again.has_value());
  EXPECT_GT(*again, 0.2);  // paid a scale-up again
  EXPECT_LT(*again, 1.5);
}

TEST(Integration, UncachedImagePullDominatesFirstRequest) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  // NOTE: no warmImageCache -- the pull phase runs.

  std::optional<double> total;
  bed.requestCatalog(0, "nginx", kNginxAddr, "cold",
                     [&](Result<HttpExchange> r) {
                       ASSERT_TRUE(r.ok());
                       total = r.value().timings.timeTotal().toSeconds();
                     });
  bed.sim().runUntil(60_s);
  ASSERT_TRUE(total.has_value());
  EXPECT_GT(*total, 3.0);  // pull of 135 MiB / 6 layers from "Docker Hub"
  EXPECT_EQ(bed.registry().pullCount(), 1u);
}

TEST(Integration, ResnetSlowestService) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("resnet", kResnetAddr).ok());
  ASSERT_TRUE(bed.registerCatalogService("asm", kAsmAddr).ok());
  bed.warmImageCache("resnet");
  bed.warmImageCache("asm");

  std::optional<double> resnetTotal;
  std::optional<double> asmTotal;
  bed.requestCatalog(0, "resnet", kResnetAddr, "resnet",
                     [&](Result<HttpExchange> r) {
                       ASSERT_TRUE(r.ok());
                       resnetTotal = r.value().timings.timeTotal().toSeconds();
                     });
  bed.requestCatalog(1, "asm", kAsmAddr, "asm",
                     [&](Result<HttpExchange> r) {
                       ASSERT_TRUE(r.ok());
                       asmTotal = r.value().timings.timeTotal().toSeconds();
                     });
  bed.sim().runUntil(60_s);
  ASSERT_TRUE(resnetTotal.has_value());
  ASSERT_TRUE(asmTotal.has_value());
  EXPECT_GT(*resnetTotal, *asmTotal * 3);  // model load dominates
  EXPECT_GT(*resnetTotal, 3.0);
}

TEST(Integration, ConcurrentFirstRequestsCoalesceDeployment) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  int completed = 0;
  for (std::size_t c = 0; c < 10; ++c) {
    bed.requestCatalog(c, "nginx", kNginxAddr, "burst",
                       [&](Result<HttpExchange> r) {
                         ASSERT_TRUE(r.ok()) << r.error().toString();
                         ++completed;
                       });
  }
  bed.sim().runUntil(30_s);
  EXPECT_EQ(completed, 10);
  // One deployment served the whole burst.
  EXPECT_EQ(bed.dockerEngine().runtime().startedCount(), 1u);
  EXPECT_EQ(bed.controller().dispatcher().deploymentsTriggered(), 1u);
}

TEST(Integration, RegistryDownFailsRequestEventually) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  // Disable every degradation path (cloud fallback, quarantine-then-cloud)
  // so the registry outage must surface as a failed request; the
  // degradation paths have their own tests.
  options.controller.cloudFallback = false;
  options.controller.quarantineCooldown = SimTime::zero();
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.registry().setAvailable(false);  // no cache, no registry

  std::optional<Result<HttpExchange>> got;
  RequestOptions ro;  // default SYN retry budget ~63 s
  HttpRequest req;
  bed.client(0).httpRequest(kNginxAddr, req,
                            [&](Result<HttpExchange> r) { got = std::move(r); },
                            ro);
  bed.sim().runUntil(150_s);
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->ok());
  EXPECT_GE(bed.controller().requestsFailed(), 1u);
}

TEST(Integration, PerPhaseMetricsRecorded) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  // Cold cache: all three phases run.
  bed.requestCatalog(0, "nginx", kNginxAddr, "t");
  bed.sim().runUntil(60_s);

  const auto* pull = bed.recorder().series("nginx/docker-egs/pull");
  const auto* create = bed.recorder().series("nginx/docker-egs/create");
  const auto* wait = bed.recorder().series("nginx/docker-egs/wait");
  ASSERT_NE(pull, nullptr);
  ASSERT_NE(create, nullptr);
  ASSERT_NE(wait, nullptr);
  EXPECT_GT(pull->median(), 1.0);     // WAN pull of nginx
  EXPECT_LT(create->median(), 0.5);   // ~100 ms class
  EXPECT_GT(wait->median(), 0.0);
}

TEST(Integration, InstanceRoundRobinSpreadsClientsAcrossReplicas) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kK8sOnly;
  options.controller.instancePolicy = "instance-round-robin";
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  // Bring the service up and scale the Deployment to 3 replicas.
  std::optional<bool> warmed;
  bed.requestCatalog(0, "nginx", kNginxAddr, "warmup",
                     [&](Result<HttpExchange> r) { warmed = r.ok(); });
  bed.sim().runUntil(20_s);
  ASSERT_TRUE(warmed.has_value() && *warmed);
  const ServiceModel* model = bed.controller().serviceAt(kNginxAddr);
  bed.k8sCluster()->scaleDeployment(model->uniqueName, 3);
  bed.sim().runUntil(40_s);
  ASSERT_EQ(bed.k8sAdapter()->readyInstances(*model).size(), 3u);

  // Nine fresh clients: the Local Scheduler rotates them over the
  // replicas; FlowMemory then pins each client to its instance.
  int done = 0;
  for (std::size_t c = 1; c <= 9; ++c) {
    bed.requestCatalog(c, "nginx", kNginxAddr, "fanout",
                       [&](Result<HttpExchange> r) {
                         ASSERT_TRUE(r.ok());
                         ++done;
                       });
  }
  bed.sim().runUntil(60_s);
  EXPECT_EQ(done, 9);
  std::map<Endpoint, int> perInstance;
  for (std::size_t c = 1; c <= 9; ++c) {
    const auto flow =
        bed.controller().flowMemory().lookup(bed.client(c).ip(), kNginxAddr);
    ASSERT_TRUE(flow.has_value());
    ++perInstance[flow->instance];
  }
  ASSERT_EQ(perInstance.size(), 3u);
  for (const auto& [instance, count] : perInstance) EXPECT_EQ(count, 3);
}

TEST(Integration, EdgeLinkFailureFailsOverAfterRecovery) {
  // The EGS link dies right after the first request's deployment started;
  // the held SYN can't reach the edge, but TCP retransmission picks the
  // path back up once the link recovers.
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
  bed.warmImageCache("nginx");

  // The EGS uplink is the OVS port toward the EGS host; take it down at
  // t=0.2 s (mid-deployment) and restore at t=4 s.
  PortId egsPort = kInvalidPort;
  for (PortId p = 0; p < bed.ovs().portCount(); ++p) {
    if (bed.net().peer(bed.ovs(), p) == &bed.egs()) egsPort = p;
  }
  ASSERT_NE(egsPort, kInvalidPort);
  bed.sim().schedule(200_ms, [&] { bed.net().setLinkUp(bed.ovs(), egsPort, false); });
  bed.sim().schedule(4_s, [&] { bed.net().setLinkUp(bed.ovs(), egsPort, true); });

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(60_s);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  // Succeeded, but only after the link came back.
  EXPECT_GE(got->value().timings.timeTotal(), 4_s);
  EXPECT_GE(got->value().timings.synRetransmits, 1);
}

TEST(Integration, HierarchicalTwoSwitchTopology) {
  // fig. 3's hierarchy: client -- gNB switch -- aggregation switch --
  // {edge host, cloud}.  The controller manages both switches; the first
  // packet is held at the gNB, the aggregation switch learns a coarse
  // route for the rewritten destination, and the response flows back
  // through both switches transparently.
  using namespace container;
  Simulation sim(101);
  Network net(sim);
  Host client(net, "client", Ipv4(10, 0, 2, 1), Mac(0x01));
  Host edge(net, "edge", Ipv4(10, 0, 1, 1), Mac(0x10));
  Host cloudHost(net, "cloud", Ipv4(198, 51, 100, 1), Mac(0xC0));
  openflow::OpenFlowSwitch gnb(net, "gnb");
  openflow::OpenFlowSwitch agg(net, "agg");

  const auto clientPorts = net.connect(client, gnb, 1_ms, 1_Gbps);
  const auto trunkPorts = net.connect(gnb, agg, 2_ms, 10_Gbps);
  const auto edgePorts = net.connect(agg, edge, 1_ms, 10_Gbps);
  const auto cloudPorts = net.connect(agg, cloudHost, 25_ms, 1_Gbps);

  LayerStore store;
  ContainerdRuntime runtime(sim, edge, store);
  ImagePuller puller(sim, store);
  Registry registry("hub", publicRegistryProfile());
  docker::DockerEngine engine(sim, runtime, puller, &registry);

  ServiceCatalog catalog;
  catalog.publishImages(registry);
  catalog.seedImages("nginx", store);

  DockerAdapter dockerAdapter(sim, "docker-edge", 0, engine);
  CloudAdapter cloudAdapter(sim, "cloud", 100, cloudHost, catalog.profiles());

  ControllerOptions controllerOptions;
  EdgeController controller(sim, controllerOptions,
                            {&dockerAdapter, &cloudAdapter},
                            catalog.profiles());
  ASSERT_TRUE(controller
                  .registerService(catalog.entry("nginx").yaml, kNginxAddr,
                                   "nginx")
                  .ok());

  SwitchTopology gnbTopo;
  gnbTopo.hostPorts[client.ip()] = clientPorts.portB;
  gnbTopo.hostPorts[edge.ip()] = trunkPorts.portA;   // via the trunk
  gnbTopo.hostPorts[cloudHost.ip()] = trunkPorts.portA;
  gnbTopo.uplinkPort = trunkPorts.portA;
  controller.attachSwitch(gnb, gnbTopo);

  SwitchTopology aggTopo;
  aggTopo.hostPorts[client.ip()] = trunkPorts.portB;  // back down the trunk
  aggTopo.hostPorts[edge.ip()] = edgePorts.portA;
  aggTopo.hostPorts[cloudHost.ip()] = cloudPorts.portA;
  aggTopo.uplinkPort = cloudPorts.portA;
  controller.attachSwitch(agg, aggTopo);

  std::optional<Result<HttpExchange>> got;
  HttpRequest req;
  client.httpRequest(kNginxAddr, req,
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  sim.runUntil(30_s);

  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  EXPECT_EQ(runtime.startedCount(), 1u);
  // Sub-second first response even across two switches.
  EXPECT_LT(got->value().timings.timeTotal().toSeconds(), 1.2);
  // The gNB held the first packet; the aggregation switch routed the
  // rewritten packet over its background reachability flows without ever
  // consulting the controller.
  EXPECT_GE(gnb.packetInCount(), 1u);
  EXPECT_EQ(agg.packetInCount(), 0u);

  // 30 s later the gNB's short-lived flow has idled out, but the
  // controller's FlowMemory remembers the client: one packet-in, an
  // immediate re-redirect to the same instance, no new deployment.
  std::optional<Result<HttpExchange>> warm;
  client.httpRequest(kNginxAddr, req,
                     [&](Result<HttpExchange> r) { warm = std::move(r); });
  sim.runUntil(31_s);
  ASSERT_TRUE(warm.has_value() && warm->ok());
  EXPECT_LT(warm->value().timings.timeTotal().toSeconds(), 0.05);
  EXPECT_EQ(runtime.startedCount(), 1u);  // still the original instance
}

TEST(Integration, DeterministicAcrossRuns) {
  auto run = [] {
    TestbedOptions options;
    options.clusterMode = ClusterMode::kDockerOnly;
    options.seed = 42;
    Testbed bed(options);
    EXPECT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());
    bed.warmImageCache("nginx");
    double total = -1;
    bed.requestCatalog(0, "nginx", kNginxAddr, "t",
                       [&](Result<HttpExchange> r) {
                         ASSERT_TRUE(r.ok());
                         total = r.value().timings.timeTotal().toSeconds();
                       });
    bed.sim().runUntil(30_s);
    return total;
  };
  const double a = run();
  const double b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace edgesim::core
