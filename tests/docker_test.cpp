// Tests for the Docker engine: pull/create/start lifecycle with API
// latency, label queries, image removal semantics, and the end-to-end
// "docker run a cached image in well under a second" calibration the
// paper's fig. 11 depends on.
#include <gtest/gtest.h>

#include <optional>

#include "docker/engine.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace edgesim::docker {
namespace {

using namespace timeliterals;
using container::ContainerState;
using container::Image;
using container::LayerStore;
using container::Registry;
using container::makeImage;
using container::privateRegistryProfile;
using container::publicRegistryProfile;

class DockerFixture : public ::testing::Test {
 protected:
  DockerFixture()
      : sim_(51),
        net_(sim_),
        egs_(net_, "egs", Ipv4(10, 0, 1, 1), Mac(0x10)),
        client_(net_, "client", Ipv4(10, 0, 0, 1), Mac(0x01)),
        runtime_(sim_, egs_, store_),
        puller_(sim_, store_),
        registry_("hub", publicRegistryProfile()),
        engine_(sim_, runtime_, puller_, &registry_) {
    net_.connect(client_, egs_, 1_ms, 1_Gbps);
    nginx_ = makeImage(*container::ImageRef::parse("nginx:1.23.2"), 135_MiB, 6);
    registry_.push(nginx_);

    spec_.name = "web";
    spec_.image = nginx_.ref;
    spec_.containerPort = 80;
    spec_.labels["edge.service"] = "web.example:80";
    spec_.app.startupDelay = 60_ms;
    spec_.app.requestCompute = 1_ms;
  }

  Simulation sim_;
  Network net_;
  Host egs_;
  Host client_;
  LayerStore store_;
  container::ContainerdRuntime runtime_;
  container::ImagePuller puller_;
  Registry registry_;
  DockerEngine engine_;
  Image nginx_;
  container::ContainerSpec spec_;
};

TEST_F(DockerFixture, PullThenCreateThenStart) {
  std::optional<Status> pulled;
  engine_.pull(nginx_.ref, [&](Status s) { pulled = s; });
  sim_.run();
  ASSERT_TRUE(pulled.has_value() && pulled->ok());
  EXPECT_TRUE(engine_.imageCached(nginx_.ref));

  std::optional<Result<ContainerId>> created;
  engine_.createContainer(spec_, [&](Result<ContainerId> r) { created = r; });
  sim_.run();
  ASSERT_TRUE(created.has_value() && created->ok());

  std::optional<Status> started;
  engine_.startContainer(created->value(), [&](Status s) { started = s; });
  sim_.run();
  ASSERT_TRUE(started.has_value() && started->ok());
  EXPECT_EQ(engine_.inspect(created->value())->state, ContainerState::kRunning);
}

TEST_F(DockerFixture, CreateWithoutImageFails) {
  std::optional<Result<ContainerId>> created;
  engine_.createContainer(spec_, [&](Result<ContainerId> r) { created = r; });
  sim_.run();
  ASSERT_TRUE(created.has_value());
  ASSERT_FALSE(created->ok());
  EXPECT_EQ(created->error().code, Errc::kFailedPrecondition);
}

TEST_F(DockerFixture, StartUnknownContainerFails) {
  std::optional<Status> started;
  engine_.startContainer(999, [&](Status s) { started = s; });
  sim_.run();
  ASSERT_TRUE(started.has_value());
  ASSERT_FALSE(started->ok());
  EXPECT_EQ(started->error().code, Errc::kNotFound);
}

TEST_F(DockerFixture, CachedCreateStartServeUnderOneSecond) {
  // The paper's headline: with the image cached, Docker answers the first
  // request in well under a second.  Here: create + start + app init +
  // HTTP round trip.
  store_.commitImage(nginx_);
  std::optional<SimTime> responded;
  engine_.createContainer(spec_, [&](Result<ContainerId> created) {
    ASSERT_TRUE(created.ok());
    engine_.startContainer(created.value(), [&, id = created.value()](Status s) {
      ASSERT_TRUE(s.ok());
      // Poll the port like the SDN controller does, then issue the request.
      sim_.schedule(200_ms, [&, id] {
        const auto endpoint = engine_.endpointOf(id);
        ASSERT_TRUE(endpoint.ok());
        client_.httpRequest(endpoint.value(), HttpRequest{},
                            [&](Result<HttpExchange> r) {
                              ASSERT_TRUE(r.ok());
                              responded = sim_.now();
                            });
      });
    });
  });
  sim_.run();
  ASSERT_TRUE(responded.has_value());
  EXPECT_LT(responded->toSeconds(), 1.0);
  EXPECT_GT(responded->toSeconds(), 0.3);  // not instantaneous either
}

TEST_F(DockerFixture, ListContainersByLabel) {
  store_.commitImage(nginx_);
  std::optional<Result<ContainerId>> created;
  engine_.createContainer(spec_, [&](Result<ContainerId> r) { created = r; });
  sim_.run();
  ASSERT_TRUE(created.has_value() && created->ok());
  EXPECT_EQ(engine_.listContainers({{"edge.service", "web.example:80"}}).size(),
            1u);
  EXPECT_TRUE(engine_.listContainers({{"edge.service", "other"}}).empty());
}

TEST_F(DockerFixture, RemoveImageInUseRefused) {
  store_.commitImage(nginx_);
  std::optional<Result<ContainerId>> created;
  engine_.createContainer(spec_, [&](Result<ContainerId> r) { created = r; });
  sim_.run();
  ASSERT_TRUE(created.has_value() && created->ok());

  std::optional<Status> removed;
  engine_.removeImage(nginx_.ref, [&](Status s) { removed = s; });
  sim_.run();
  ASSERT_TRUE(removed.has_value());
  ASSERT_FALSE(removed->ok());
  EXPECT_EQ(removed->error().code, Errc::kConflict);

  // After removing the container, image removal succeeds.
  std::optional<Status> rmContainer;
  engine_.removeContainer(created->value(), [&](Status s) { rmContainer = s; });
  sim_.run();
  ASSERT_TRUE(rmContainer.has_value() && rmContainer->ok());
  std::optional<Status> removed2;
  engine_.removeImage(nginx_.ref, [&](Status s) { removed2 = s; });
  sim_.run();
  ASSERT_TRUE(removed2.has_value() && removed2->ok());
  EXPECT_FALSE(engine_.imageCached(nginx_.ref));
}

TEST_F(DockerFixture, RemoveMissingImageFails) {
  std::optional<Status> removed;
  engine_.removeImage(*container::ImageRef::parse("ghost:1"),
                      [&](Status s) { removed = s; });
  sim_.run();
  ASSERT_TRUE(removed.has_value());
  ASSERT_FALSE(removed->ok());
  EXPECT_EQ(removed->error().code, Errc::kNotFound);
}

TEST_F(DockerFixture, StopThenRemoveContainer) {
  store_.commitImage(nginx_);
  std::optional<ContainerId> id;
  engine_.createContainer(spec_, [&](Result<ContainerId> r) {
    ASSERT_TRUE(r.ok());
    id = r.value();
    engine_.startContainer(*id, [](Status) {});
  });
  sim_.run();
  ASSERT_TRUE(id.has_value());
  ASSERT_EQ(engine_.inspect(*id)->state, ContainerState::kRunning);

  std::optional<Status> stopped;
  engine_.stopContainer(*id, [&](Status s) { stopped = s; });
  sim_.run();
  ASSERT_TRUE(stopped.has_value() && stopped->ok());

  std::optional<Status> removed;
  engine_.removeContainer(*id, [&](Status s) { removed = s; });
  sim_.run();
  ASSERT_TRUE(removed.has_value() && removed->ok());
  EXPECT_EQ(engine_.inspect(*id), nullptr);
}

TEST_F(DockerFixture, PullFromPrivateRegistryFaster) {
  Registry privateReg("local", privateRegistryProfile());
  privateReg.push(nginx_);
  DockerEngine privateEngine(sim_, runtime_, puller_, &privateReg);

  std::optional<SimTime> publicDone;
  engine_.pull(nginx_.ref, [&](Status s) {
    ASSERT_TRUE(s.ok());
    publicDone = sim_.now();
  });
  sim_.run();
  ASSERT_TRUE(publicDone.has_value());

  // Fresh store for the private pull.
  LayerStore store2;
  container::ImagePuller puller2(sim_, store2);
  Host egs2(net_, "egs2", Ipv4(10, 0, 1, 2), Mac(0x11));
  container::ContainerdRuntime runtime2(sim_, egs2, store2);
  DockerEngine engine2(sim_, runtime2, puller2, &privateReg);
  const SimTime base = sim_.now();
  std::optional<SimTime> privateDone;
  engine2.pull(nginx_.ref, [&](Status s) {
    ASSERT_TRUE(s.ok());
    privateDone = sim_.now() - base;
  });
  sim_.run();
  ASSERT_TRUE(privateDone.has_value());
  const double saving = publicDone->toSeconds() - privateDone->toSeconds();
  EXPECT_GT(saving, 1.0);  // fig. 13: private registry saves 1.5-2 s
  EXPECT_LT(saving, 4.0);
}

}  // namespace
}  // namespace edgesim::docker
