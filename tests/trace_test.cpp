// Tests for the trace subsystem: span nesting and ID stability under the
// deterministic sim clock, Chrome trace_event export, the per-request
// breakdown (segments partition time_total), and the end-to-end request-ID
// propagation through the testbed.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/testbed.hpp"
#include "trace/trace_recorder.hpp"
#include "util/json.hpp"

namespace edgesim {
namespace {

using namespace edgesim::core;
using namespace edgesim::timeliterals;
using trace::RequestId;
using trace::SpanId;
using trace::TraceRecorder;

// ---------------------------------------------------------- recording ----

TEST(TraceRecorder, SpanIdsAreStableAndNested) {
  TraceRecorder recorder;
  const RequestId rid = recorder.newRequest();
  EXPECT_EQ(rid, 1u);

  const SpanId root = recorder.beginSpan(rid, "request", "client", 0_s);
  const SpanId resolve =
      recorder.beginSpan(rid, "resolve", "controller", 1_ms, {}, root);
  const SpanId deploy =
      recorder.beginSpan(rid, "deploy", "deploy", 2_ms, {}, resolve);
  EXPECT_EQ(root, 1u);
  EXPECT_EQ(resolve, 2u);
  EXPECT_EQ(deploy, 3u);

  recorder.endSpan(deploy, 300_ms);
  recorder.endSpan(resolve, 301_ms);
  recorder.endSpan(root, 400_ms);

  ASSERT_EQ(recorder.spanCount(), 3u);
  const trace::TraceSpan* deploySpan = recorder.spanById(deploy);
  ASSERT_NE(deploySpan, nullptr);
  EXPECT_EQ(deploySpan->parent, resolve);
  EXPECT_EQ(recorder.spanById(resolve)->parent, root);
  EXPECT_EQ(recorder.spanById(root)->parent, 0u);
  EXPECT_FALSE(deploySpan->open);
  EXPECT_EQ(deploySpan->duration(), 298_ms);
  // IDs are 1-based indices -- identical call sequences yield identical IDs.
  TraceRecorder again;
  const RequestId rid2 = again.newRequest();
  EXPECT_EQ(again.beginSpan(rid2, "request", "client", 0_s), root);
  EXPECT_EQ(again.beginSpan(rid2, "resolve", "controller", 1_ms), resolve);
}

TEST(TraceRecorder, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;
  recorder.setEnabled(false);
  EXPECT_EQ(recorder.newRequest(), 0u);
  EXPECT_EQ(recorder.beginSpan(1, "x", "y", 0_s), 0u);
  recorder.instant(1, "x", "y", 0_s);
  EXPECT_EQ(recorder.spanCount(), 0u);
  EXPECT_TRUE(recorder.instants().empty());
  // Only the constant process_name metadata event remains.
  EXPECT_EQ(recorder.chromeTrace().find("traceEvents")->size(), 1u);
}

TEST(TraceRecorder, FlowBindingIsConsumedOnUse) {
  TraceRecorder recorder;
  const Ipv4 client(10, 0, 2, 1);
  const Endpoint service(Ipv4(203, 0, 113, 10), 80);
  const RequestId rid = recorder.newRequest();
  recorder.bindFlow(client, service, rid);
  EXPECT_EQ(recorder.clientRequestDone(client, service, 0_s, 1_s, true, "a"),
            rid);
  // Binding consumed: the next completion gets a fresh request ID.
  const RequestId warm =
      recorder.clientRequestDone(client, service, 2_s, 3_s, true, "a");
  EXPECT_NE(warm, rid);
  EXPECT_NE(warm, 0u);
}

// ------------------------------------------------------------- export ----

TEST(TraceRecorder, ChromeTraceHasSchemaFields) {
  TraceRecorder recorder;
  const RequestId rid = recorder.newRequest();
  const SpanId root = recorder.beginSpan(rid, "request", "client", 0_s);
  recorder.instant(rid, "packet-in", "controller", 1_ms,
                   {{"client", "10.0.2.1"}});
  recorder.endSpan(root, 500_ms);

  const JsonValue doc = recorder.chromeTrace();
  EXPECT_TRUE(doc.has("displayTimeUnit"));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool sawComplete = false;
  bool sawInstant = false;
  bool sawMeta = false;
  for (const JsonValue& event : events->items()) {
    const std::string phase = event.stringOr("ph", "");
    EXPECT_TRUE(event.has("pid"));
    if (phase == "X" || phase == "i") {
      EXPECT_TRUE(event.has("tid"));
      EXPECT_TRUE(event.has("ts"));
    }
    if (phase == "X") {
      sawComplete = true;
      EXPECT_EQ(event.stringOr("name", ""), "request");
      EXPECT_EQ(event.stringOr("cat", ""), "client");
      // ts/dur are microseconds: 0 .. 500 ms.
      EXPECT_EQ(event.numberOr("ts", -1), 0);
      EXPECT_EQ(event.numberOr("dur", -1), 500000);
      EXPECT_EQ(event.numberOr("tid", 0), static_cast<double>(rid));
    } else if (phase == "i") {
      sawInstant = true;
      EXPECT_EQ(event.stringOr("name", ""), "packet-in");
      EXPECT_EQ(event.numberOr("ts", -1), 1000);
    } else if (phase == "M") {
      sawMeta = true;
    }
  }
  EXPECT_TRUE(sawComplete);
  EXPECT_TRUE(sawInstant);
  EXPECT_TRUE(sawMeta);

  // The serialized document parses back.
  const auto parsed = JsonValue::parse(recorder.chromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.error().toString();
  EXPECT_EQ(parsed.value().find("traceEvents")->size(), events->size());
}

// ------------------------------------------- end-to-end via the testbed ----

/// One cold request through the full transparent-access path.
struct ColdRunResult {
  double timeTotal = -1;
  std::string traceJson;
};

ColdRunResult runColdRequest() {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  EXPECT_TRUE(bed.registerCatalogService("nginx", address).ok());
  bed.warmImageCache("nginx");
  ColdRunResult result;
  bed.requestCatalog(0, "nginx", address, "cold",
                     [&result](Result<HttpExchange> r) {
                       ASSERT_TRUE(r.ok());
                       result.timeTotal =
                           r.value().timings.timeTotal().toSeconds();
                     });
  bed.sim().runUntil(30_s);
  result.traceJson = bed.trace().chromeTraceJson();

  // Request-ID propagation: packet-in instant and the controller spans all
  // carry the same request ID as the root span.
  const auto& spans = bed.trace().spans();
  std::set<RequestId> requestIds;
  for (const auto& span : spans) requestIds.insert(span.request);
  EXPECT_EQ(requestIds.size(), 1u);
  EXPECT_NE(*requestIds.begin(), 0u);

  // The breakdown's segments partition time_total (well within 1 ms).
  const auto breakdowns = bed.trace().breakdowns();
  EXPECT_EQ(breakdowns.size(), 1u);
  if (!breakdowns.empty()) {
    const auto& breakdown = breakdowns.front();
    EXPECT_EQ(breakdown.totalSeconds, result.timeTotal);
    EXPECT_LT(std::fabs(breakdown.segmentSum() - breakdown.totalSeconds),
              1e-3);
    EXPECT_EQ(breakdown.segments.size(), 3u);  // uplink / resolve / downlink
    EXPECT_FALSE(breakdown.phases.empty());    // deployment phases nested
  }
  return result;
}

TEST(TraceRecorder, RequestOnlyExportHasNoDomainProcess) {
  // Golden byte-safety: an export without track events must not grow the
  // pid-2 domain process -- the determinism goldens compare bytewise.
  TraceRecorder recorder;
  const RequestId rid = recorder.newRequest();
  const SpanId root = recorder.beginSpan(rid, "request", "client", 0_s);
  recorder.endSpan(root, 500_ms);
  const JsonValue doc = recorder.chromeTrace();
  for (const JsonValue& event : doc.find("traceEvents")->items()) {
    const JsonValue* pid = event.find("pid");
    ASSERT_NE(pid, nullptr);
    EXPECT_NE(pid->asNumber(), 2.0);
  }
}

TEST(TraceRecorder, TrackSpansExportOnDomainProcess) {
  TraceRecorder recorder;
  recorder.nameTrack(0, "0:main");
  recorder.nameTrack(1, "1:edge");
  recorder.completeTrackSpan(0, "advance", "domain", 1_ms, 2_ms,
                             {{"dispatched", "3"}});
  recorder.completeTrackSpan(1, "stall", "domain", 2_ms, 3_ms,
                             {{"bound_by", "0"}});
  recorder.flowBegin(42, 0, "xdom", "domain", 1_ms);
  recorder.flowEnd(42, 1, "xdom", "domain", 2_ms);

  const JsonValue doc = recorder.chromeTrace();
  std::set<std::string> trackNames;
  int domainSpans = 0, flowBegins = 0, flowEnds = 0;
  bool sawDomainProcessName = false;
  for (const JsonValue& event : doc.find("traceEvents")->items()) {
    if (event.numberOr("pid", 0.0) != 2.0) continue;
    const std::string phase = event.stringOr("ph", "");
    if (phase == "M") {
      const std::string name = event.stringOr("name", "");
      if (name == "process_name") {
        sawDomainProcessName =
            event.find("args")->stringOr("name", "") == "edgesim-domains";
      } else if (name == "thread_name") {
        trackNames.insert(event.find("args")->stringOr("name", ""));
      }
    } else if (phase == "X") {
      ++domainSpans;
      EXPECT_TRUE(event.has("tid"));
    } else if (phase == "s") {
      ++flowBegins;
      EXPECT_EQ(event.numberOr("id", -1.0), 42.0);
    } else if (phase == "f") {
      ++flowEnds;
      EXPECT_EQ(event.numberOr("id", -1.0), 42.0);
      EXPECT_EQ(event.stringOr("bp", ""), "e");
    }
  }
  EXPECT_TRUE(sawDomainProcessName);
  EXPECT_EQ(trackNames, (std::set<std::string>{"0:main", "1:edge"}));
  EXPECT_EQ(domainSpans, 2);
  EXPECT_EQ(flowBegins, 1);
  EXPECT_EQ(flowEnds, 1);

  // Track events do not leak into the request process.
  for (const JsonValue& event : doc.find("traceEvents")->items()) {
    if (event.numberOr("pid", 0.0) != 1.0) continue;
    EXPECT_NE(event.stringOr("cat", ""), "domain");
  }
}

TEST(TraceTestbed, ColdRequestBreakdownPartitionsTimeTotal) {
  const ColdRunResult run = runColdRequest();
  EXPECT_GT(run.timeTotal, 0.0);

  // Spot-check the exported trace: one root request span plus the
  // controller-side spans, all parseable.
  const auto parsed = JsonValue::parse(run.traceJson);
  ASSERT_TRUE(parsed.ok()) << parsed.error().toString();
  std::size_t requestSpans = 0;
  std::size_t packetIns = 0;
  for (const JsonValue& event : parsed.value().find("traceEvents")->items()) {
    if (event.stringOr("ph", "") == "X" &&
        event.stringOr("name", "") == "request") {
      ++requestSpans;
    }
    if (event.stringOr("ph", "") == "i" &&
        event.stringOr("name", "") == "packet-in") {
      ++packetIns;
    }
  }
  EXPECT_EQ(requestSpans, 1u);
  EXPECT_EQ(packetIns, 1u);
}

TEST(TraceTestbed, ChromeTraceIsDeterministicAcrossIdenticalRuns) {
  const ColdRunResult a = runColdRequest();
  const ColdRunResult b = runColdRequest();
  EXPECT_EQ(a.timeTotal, b.timeTotal);
  EXPECT_EQ(a.traceJson, b.traceJson);
}

TEST(TraceTestbed, PhaseSamplesFeedBenchSeries) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  ASSERT_TRUE(bed.registerCatalogService("nginx", address).ok());
  bed.warmImageCache("nginx");
  bed.requestCatalog(0, "nginx", address, "cold");
  bed.sim().runUntil(30_s);

  const auto samples = bed.trace().phaseSamples();
  ASSERT_TRUE(samples.count("trace/total"));
  ASSERT_TRUE(samples.count("trace/resolve"));
  ASSERT_TRUE(samples.count("trace/uplink"));
  ASSERT_TRUE(samples.count("trace/downlink"));
  EXPECT_EQ(samples.at("trace/total").count(), 1u);
  // Segment samples sum back to the total.
  const double sum = samples.at("trace/uplink").mean() +
                     samples.at("trace/resolve").mean() +
                     samples.at("trace/downlink").mean();
  EXPECT_NEAR(sum, samples.at("trace/total").mean(), 1e-9);
}

TEST(TraceTestbed, TracingCanBeDisabled) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.tracing = false;
  Testbed bed(options);
  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  ASSERT_TRUE(bed.registerCatalogService("nginx", address).ok());
  bed.warmImageCache("nginx");
  bool done = false;
  bed.requestCatalog(0, "nginx", address, "cold",
                     [&done](Result<HttpExchange> r) { done = r.ok(); });
  bed.sim().runUntil(30_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(bed.trace().spanCount(), 0u);
  EXPECT_TRUE(bed.trace().breakdowns().empty());
}

}  // namespace
}  // namespace edgesim
