// Edge cases of the bench_diff comparison layer (BenchReport +
// compareReports): empty sample arrays, non-finite (NaN) summary stats,
// and schema mismatches.  These are the paths a CI gate must not be
// lenient about -- a comparator that shrugs at a NaN median or an
// unknown schema silently stops gating anything.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "metrics/bench_report.hpp"
#include "util/stats.hpp"

namespace edgesim::metrics {
namespace {

Samples samplesOf(std::initializer_list<double> values) {
  Samples samples;
  for (const double v : values) samples.add(v);
  return samples;
}

BenchReport reportWith(const std::string& series,
                       std::initializer_list<double> values) {
  BenchReport report("test-bench");
  report.addSeries(series, samplesOf(values));
  return report;
}

// ---- empty sample arrays ---------------------------------------------------

TEST(BenchDiffEmptySeries, EmptySeriesProducesZeroedStats) {
  BenchReport report("test-bench");
  report.addSeries("empty", Samples());
  const SeriesStats* stats = report.findSeries("empty");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 0u);
  EXPECT_EQ(stats->median, 0.0);
  EXPECT_EQ(stats->p95, 0.0);
  EXPECT_TRUE(stats->samples.empty());
}

TEST(BenchDiffEmptySeries, EmptyVersusEmptyIsClean) {
  BenchReport baseline("test-bench");
  baseline.addSeries("phase", Samples());
  BenchReport candidate("test-bench");
  candidate.addSeries("phase", Samples());

  const CompareResult result = compareReports(baseline, candidate);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.seriesCompared, 1u);
  EXPECT_TRUE(result.regressions.empty());
}

TEST(BenchDiffEmptySeries, CandidateLosingItsSamplesIsACountRegression) {
  const BenchReport baseline = reportWith("phase", {0.4, 0.5, 0.6});
  BenchReport candidate("test-bench");
  candidate.addSeries("phase", Samples());

  const CompareResult result = compareReports(baseline, candidate);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].metric, "count");
  EXPECT_EQ(result.regressions[0].baseline, 3.0);
  EXPECT_EQ(result.regressions[0].candidate, 0.0);
}

TEST(BenchDiffEmptySeries, EmptySeriesSurvivesJsonRoundTrip) {
  BenchReport report("test-bench");
  report.addSeries("empty", Samples());
  const auto parsed = BenchReport::fromJson(report.toJson());
  ASSERT_TRUE(parsed.ok());
  const SeriesStats* stats = parsed.value().findSeries("empty");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 0u);
  EXPECT_TRUE(stats->samples.empty());
}

// ---- non-finite medians ----------------------------------------------------

TEST(BenchDiffNonFinite, NanCandidateMedianIsARegressionNotAPass) {
  // NaN compares false against everything, so without an explicit check a
  // broken candidate ("median": NaN) passes every `>` gate.  It must be
  // flagged, not waved through.
  const BenchReport baseline = reportWith("phase", {0.5, 0.5, 0.5});
  const BenchReport candidate =
      reportWith("phase", {0.5, std::numeric_limits<double>::quiet_NaN(), 0.5});
  ASSERT_TRUE(std::isnan(candidate.findSeries("phase")->median) ||
              std::isnan(candidate.findSeries("phase")->p95))
      << "test setup: NaN sample must poison a summary stat";

  const CompareResult result = compareReports(baseline, candidate);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.regressions.empty());
  EXPECT_EQ(result.regressions[0].metric, "non-finite");
}

TEST(BenchDiffNonFinite, NanBaselineIsFlaggedToo) {
  // A poisoned BASELINE would otherwise make every future candidate pass.
  const BenchReport baseline =
      reportWith("phase", {std::numeric_limits<double>::quiet_NaN()});
  const BenchReport candidate = reportWith("phase", {0.5});

  const CompareResult result = compareReports(baseline, candidate);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.regressions.empty());
  EXPECT_EQ(result.regressions[0].metric, "non-finite");
}

TEST(BenchDiffNonFinite, InfinityIsFlagged) {
  const BenchReport baseline = reportWith("phase", {0.5});
  const BenchReport candidate =
      reportWith("phase", {std::numeric_limits<double>::infinity()});

  const CompareResult result = compareReports(baseline, candidate);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.regressions.empty());
  EXPECT_EQ(result.regressions[0].metric, "non-finite");
}

// ---- schema mismatches -----------------------------------------------------

TEST(BenchDiffSchema, UnknownSchemaNameIsRejected) {
  const auto json = JsonValue::parse(R"({
    "schema": "someone-elses-bench",
    "schema_version": 1,
    "bench": "b",
    "series": {}
  })");
  ASSERT_TRUE(json.ok());
  const auto report = BenchReport::fromJson(json.value());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("schema"), std::string::npos);
}

TEST(BenchDiffSchema, NewerSchemaVersionIsRejected) {
  const auto json = JsonValue::parse(R"({
    "schema": "edgesim-bench",
    "schema_version": 99,
    "bench": "b",
    "series": {}
  })");
  ASSERT_TRUE(json.ok());
  const auto report = BenchReport::fromJson(json.value());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("schema_version"), std::string::npos);
}

TEST(BenchDiffSchema, MissingSchemaVersionIsRejected) {
  const auto json = JsonValue::parse(R"({
    "schema": "edgesim-bench",
    "bench": "b",
    "series": {}
  })");
  ASSERT_TRUE(json.ok());
  EXPECT_FALSE(BenchReport::fromJson(json.value()).ok());
}

TEST(BenchDiffSchema, MissingSeriesObjectIsRejected) {
  const auto json = JsonValue::parse(R"({
    "schema": "edgesim-bench",
    "schema_version": 1,
    "bench": "b"
  })");
  ASSERT_TRUE(json.ok());
  EXPECT_FALSE(BenchReport::fromJson(json.value()).ok());
}

// ---- missing series / sanity ----------------------------------------------

TEST(BenchDiff, BaselineSeriesAbsentFromCandidateIsReported) {
  const BenchReport baseline = reportWith("gone", {1.0});
  const BenchReport candidate = reportWith("other", {1.0});

  const CompareResult result = compareReports(baseline, candidate);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.missingSeries.size(), 1u);
  EXPECT_EQ(result.missingSeries[0], "gone");
}

TEST(BenchDiff, MedianOnlyModeIgnoresTailRegressions) {
  // Same median, much fatter tail: gated by default, waved through when
  // comparePercentile is off (the bench_diff --median-only mode used for
  // wall-clock benches whose p95 is scheduling noise).
  const BenchReport baseline = reportWith("phase", {1.0, 1.0, 1.0, 1.0, 1.0});
  const BenchReport candidate = reportWith("phase", {1.0, 1.0, 1.0, 1.0, 9.0});

  CompareOptions options;
  EXPECT_FALSE(compareReports(baseline, candidate, options).ok());
  options.comparePercentile = false;
  EXPECT_TRUE(compareReports(baseline, candidate, options).ok());
}

TEST(BenchDiff, SlowdownBeyondToleranceRegresses) {
  const BenchReport baseline = reportWith("phase", {1.0});
  const BenchReport candidate = reportWith("phase", {1.5});

  const CompareResult result = compareReports(baseline, candidate);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.regressions.empty());
  EXPECT_EQ(result.regressions[0].metric, "median");
}

}  // namespace
}  // namespace edgesim::metrics
