// Unit tests for the core module: YAML annotator (§V), service models,
// Table I catalogue, FlowMemory (§V), and the Global Scheduler decisions
// (§IV-B) -- FAST/BEST semantics including "without waiting".
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/annotator.hpp"

#include "util/rng.hpp"
#include "util/strings.hpp"
#include "core/flow_memory.hpp"
#include "core/scheduler.hpp"
#include "core/service_catalog.hpp"
#include "core/service_model.hpp"
#include "yamlite/parse.hpp"

namespace edgesim::core {
namespace {

using namespace timeliterals;

const Endpoint kSvc{Ipv4(203, 0, 113, 10), 80};

// ------------------------------------------------------------ annotator ----

TEST(Annotator, UniqueNameFromAddress) {
  EXPECT_EQ(uniqueServiceName(kSvc), "edge-203-0-113-10-80");
  EXPECT_EQ(uniqueServiceName(Endpoint(Ipv4(1, 2, 3, 4), 8080)),
            "edge-1-2-3-4-8080");
}

TEST(Annotator, MinimalDefinitionGetsEverything) {
  // "The only mandatory data is the name of the image."
  const auto result = annotateServiceYaml(R"(spec:
  template:
    spec:
      containers:
      - image: nginx:1.23.2
)",
                                          kSvc, AnnotatorConfig{});
  ASSERT_TRUE(result.ok()) << result.error().toString();
  const auto& annotated = result.value();

  EXPECT_EQ(annotated.uniqueName, "edge-203-0-113-10-80");
  const auto& dep = annotated.deployment;
  EXPECT_EQ(dep.findPath("metadata.name")->asString(), annotated.uniqueName);
  EXPECT_EQ(dep.findPath("apiVersion")->asString(), "apps/v1");
  EXPECT_EQ(dep.findPath("kind")->asString(), "Deployment");
  // Scale to zero by default.
  EXPECT_EQ(dep.findPath("spec.replicas")->asInt().value(), 0);
  // matchLabels + edge.service label in all three places.
  for (const char* path :
       {"metadata.labels", "spec.selector.matchLabels",
        "spec.template.metadata.labels"}) {
    const auto* labels = dep.findPath(path);
    ASSERT_NE(labels, nullptr) << path;
    EXPECT_EQ(labels->find("edge.service")->asString(), "203.0.113.10:80");
    EXPECT_EQ(labels->find("app")->asString(), annotated.uniqueName);
  }
  // Service generated with port/targetPort/protocol.
  EXPECT_TRUE(annotated.serviceGenerated);
  EXPECT_EQ(annotated.service.findPath("kind")->asString(), "Service");
  const auto* ports = annotated.service.findPath("spec.ports");
  ASSERT_NE(ports, nullptr);
  EXPECT_EQ(ports->items()[0].find("port")->asInt().value(), 80);
  EXPECT_EQ(ports->items()[0].find("targetPort")->asInt().value(), 80);
  EXPECT_EQ(ports->items()[0].find("protocol")->asString(), "TCP");
}

TEST(Annotator, TargetPortFromContainerPort) {
  const auto result = annotateServiceYaml(R"(spec:
  template:
    spec:
      containers:
      - image: tf/resnet:1
        ports:
        - containerPort: 8501
)",
                                          kSvc, AnnotatorConfig{});
  ASSERT_TRUE(result.ok());
  const auto* ports = result.value().service.findPath("spec.ports");
  EXPECT_EQ(ports->items()[0].find("targetPort")->asInt().value(), 8501);
  EXPECT_EQ(ports->items()[0].find("port")->asInt().value(), 80);
}

TEST(Annotator, SchedulerNameInjectedWhenConfigured) {
  AnnotatorConfig config;
  config.localScheduler = "edge-local-scheduler";
  const auto result = annotateServiceYaml(
      "spec:\n  template:\n    spec:\n      containers:\n      - image: a:1\n",
      kSvc, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()
                .deployment.findPath("spec.template.spec.schedulerName")
                ->asString(),
            "edge-local-scheduler");
}

TEST(Annotator, NoSchedulerNameByDefault) {
  const auto result = annotateServiceYaml(
      "spec:\n  template:\n    spec:\n      containers:\n      - image: a:1\n",
      kSvc, AnnotatorConfig{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(
      result.value().deployment.findPath("spec.template.spec.schedulerName"),
      nullptr);
}

TEST(Annotator, DeveloperProvidedServicePreserved) {
  const auto result = annotateServiceYaml(R"(spec:
  template:
    spec:
      containers:
      - image: a:1
service:
  spec:
    ports:
    - port: 9999
      targetPort: 9999
)",
                                          kSvc, AnnotatorConfig{});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().serviceGenerated);
  const auto* ports = result.value().service.findPath("spec.ports");
  ASSERT_NE(ports, nullptr);
  EXPECT_EQ(ports->items()[0].find("port")->asInt().value(), 9999);
  // The embedded service key is removed from the deployment document.
  EXPECT_EQ(result.value().deployment.find("service"), nullptr);
}

TEST(Annotator, RejectsDefinitionWithoutImage) {
  EXPECT_FALSE(annotateServiceYaml("spec:\n  replicas: 1\n", kSvc,
                                   AnnotatorConfig{})
                   .ok());
  EXPECT_FALSE(annotateServiceYaml("just-a-scalar\n", kSvc, AnnotatorConfig{})
                   .ok());
  EXPECT_FALSE(annotateServiceYaml(
                   "spec:\n  template:\n    spec:\n      containers: []\n",
                   kSvc, AnnotatorConfig{})
                   .ok());
}

TEST(Annotator, ExistingNameIsOverridden) {
  const auto result = annotateServiceYaml(R"(metadata:
  name: my-local-name
spec:
  template:
    spec:
      containers:
      - image: a:1
)",
                                          kSvc, AnnotatorConfig{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().deployment.findPath("metadata.name")->asString(),
            "edge-203-0-113-10-80");
}

TEST(Annotator, AnnotatedDocumentStillEmitsAndReparses) {
  const auto result = annotateServiceYaml(
      ServiceCatalog().entry("nginx-py").yaml, kSvc, AnnotatorConfig{});
  ASSERT_TRUE(result.ok());
  const auto emitted = yamlite::emit(result.value().deployment);
  const auto reparsed = yamlite::parse(emitted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().toString();
  EXPECT_TRUE(result.value().deployment == reparsed.value());
}

// --------------------------------------------------------- service model ----

TEST(ServiceModel, BuildsSpecsWithProfilesAndLabels) {
  ServiceCatalog catalog;
  const auto annotated = annotateServiceYaml(catalog.entry("nginx-py").yaml,
                                             kSvc, AnnotatorConfig{});
  ASSERT_TRUE(annotated.ok());
  const auto model =
      buildServiceModel(annotated.value(), kSvc, catalog.profiles());
  ASSERT_TRUE(model.ok()) << model.error().toString();
  const auto& m = model.value();
  ASSERT_EQ(m.containers.size(), 2u);
  EXPECT_EQ(m.containers[0].name, "nginx");
  EXPECT_EQ(m.containers[0].containerPort, 80);
  EXPECT_TRUE(m.containers[0].app.exposesPort);
  EXPECT_EQ(m.containers[1].name, "env-writer");
  EXPECT_FALSE(m.containers[1].app.exposesPort);
  EXPECT_EQ(m.containers[1].env.at("WRITE_INTERVAL_SECONDS"), "1");
  ASSERT_EQ(m.containers[0].volumeMounts.size(), 1u);
  EXPECT_EQ(m.containers[0].volumeMounts[0].second, "/usr/share/nginx/html");
  EXPECT_EQ(m.containers[0].labels.at("edge.service"), "203.0.113.10:80");
  EXPECT_EQ(m.targetPort, 80);
}

TEST(ServiceModel, UnknownImageGetsDefaultProfile) {
  const auto annotated = annotateServiceYaml(
      "spec:\n  template:\n    spec:\n      containers:\n      - image: mystery:9\n",
      kSvc, AnnotatorConfig{});
  ASSERT_TRUE(annotated.ok());
  AppProfileRegistry empty;
  const auto model = buildServiceModel(annotated.value(), kSvc, empty);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model.value().containers[0].app.startupDelay.toNanos(), 0);
}

// -------------------------------------------------------------- catalog ----

TEST(Catalog, TableOneContents) {
  ServiceCatalog catalog;
  ASSERT_EQ(catalog.entries().size(), 4u);

  const auto& asmEntry = catalog.entry("asm");
  EXPECT_EQ(asmEntry.displayName, "Asm");
  EXPECT_EQ(catalog.totalLayerCount("asm"), 1u);
  EXPECT_NEAR(static_cast<double>(catalog.totalImageSize("asm").value),
              6.18 * 1024, 16.0);

  EXPECT_EQ(catalog.totalImageSize("nginx"), 135_MiB);
  EXPECT_EQ(catalog.totalLayerCount("nginx"), 6u);

  const auto& resnet = catalog.entry("resnet");
  EXPECT_EQ(catalog.totalImageSize("resnet"), 308_MiB);
  EXPECT_EQ(catalog.totalLayerCount("resnet"), 9u);
  EXPECT_EQ(resnet.requestMethod, HttpMethod::kPost);
  EXPECT_EQ(resnet.requestPayload.value, 83u * 1024);

  const auto& nginxPy = catalog.entry("nginx-py");
  EXPECT_EQ(nginxPy.containerCount, 2);
  EXPECT_EQ(catalog.totalImageSize("nginx-py"), 181_MiB);
  EXPECT_EQ(catalog.totalLayerCount("nginx-py"), 7u);
}

TEST(Catalog, YamlDefinitionsParseAndAnnotate) {
  ServiceCatalog catalog;
  for (const auto& entry : catalog.entries()) {
    const auto annotated =
        annotateServiceYaml(entry.yaml, kSvc, AnnotatorConfig{});
    ASSERT_TRUE(annotated.ok())
        << entry.key << ": " << annotated.error().toString();
    const auto model =
        buildServiceModel(annotated.value(), kSvc, catalog.profiles());
    ASSERT_TRUE(model.ok()) << entry.key;
    EXPECT_EQ(static_cast<int>(model.value().containers.size()),
              entry.containerCount);
  }
}

TEST(Catalog, ProfilesMatchPaperQualitative) {
  ServiceCatalog catalog;
  const auto& profiles = catalog.profiles();
  const auto asmApp = profiles.lookup("josefhammer/web-asm:amd64");
  const auto nginxApp = profiles.lookup("nginx:1.23.2");
  const auto resnetApp =
      profiles.lookup("gcr.io/tensorflow-serving/resnet:latest");
  // Asm has negligible launch time; ResNet's model load dominates.
  EXPECT_LT(asmApp.startupDelay, nginxApp.startupDelay);
  EXPECT_GT(resnetApp.startupDelay, nginxApp.startupDelay * 10);
  // Warm requests: small services ~sub-ms; ResNet inference >> (fig. 16).
  EXPECT_LT(nginxApp.requestCompute, 1_ms);
  EXPECT_GT(resnetApp.requestCompute, 50_ms);
}

// ------------------------------------------------------------ flow memory ----

TEST(FlowMemoryTest, UpsertLookupTouchExpire) {
  FlowMemory memory(10_s);
  const Ipv4 client(10, 0, 2, 1);
  const Endpoint instance(Ipv4(10, 0, 1, 1), 30000);
  memory.upsert(client, kSvc, instance, "docker-egs", SimTime::zero());

  const auto flow = memory.lookup(client, kSvc);
  ASSERT_TRUE(flow.has_value());
  EXPECT_EQ(flow->instance, instance);
  EXPECT_EQ(flow->cluster, "docker-egs");

  memory.touch(client, kSvc, 8_s);
  EXPECT_TRUE(memory.expire(12_s).empty());  // idle only 4 s
  const auto expired = memory.expire(18_s);  // idle 10 s
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].cluster, "docker-egs");
  EXPECT_FALSE(memory.lookup(client, kSvc).has_value());
}

TEST(FlowMemoryTest, PerClientPerServiceKeys) {
  FlowMemory memory(10_s);
  const Endpoint svc2(Ipv4(203, 0, 113, 11), 80);
  memory.upsert(Ipv4(10, 0, 2, 1), kSvc, Endpoint(Ipv4(1, 1, 1, 1), 1), "a",
                SimTime::zero());
  memory.upsert(Ipv4(10, 0, 2, 2), kSvc, Endpoint(Ipv4(1, 1, 1, 1), 1), "a",
                SimTime::zero());
  memory.upsert(Ipv4(10, 0, 2, 1), svc2, Endpoint(Ipv4(1, 1, 1, 2), 1), "b",
                SimTime::zero());
  EXPECT_EQ(memory.size(), 3u);
  EXPECT_EQ(memory.flowsFor(kSvc, "a"), 2u);
  EXPECT_EQ(memory.flowsFor(svc2, "b"), 1u);
  EXPECT_EQ(memory.flowsFor(kSvc, "b"), 0u);
}

TEST(FlowMemoryTest, ForgetInstanceDropsAllItsFlows) {
  FlowMemory memory(10_s);
  const Endpoint instance(Ipv4(10, 0, 1, 1), 30000);
  memory.upsert(Ipv4(10, 0, 2, 1), kSvc, instance, "a", SimTime::zero());
  memory.upsert(Ipv4(10, 0, 2, 2), kSvc, instance, "a", SimTime::zero());
  memory.forgetInstance(instance);
  EXPECT_EQ(memory.size(), 0u);
}

// ------------------------------------------------------------- schedulers ----

ClusterView makeView(const std::string& name, int rank, int ready,
                     bool isCloud = false) {
  ClusterView view;
  view.name = name;
  view.distanceRank = rank;
  view.isCloud = isCloud;
  for (int i = 0; i < ready; ++i) {
    view.readyInstances.emplace_back(Ipv4(10, 0, 1, 1),
                                     static_cast<std::uint16_t>(30000 + i));
  }
  view.freeCapacity = 10;
  return view;
}

ScheduleRequest makeRequest(std::vector<ClusterView> clusters) {
  ScheduleRequest request;
  request.service = kSvc;
  request.client = Ipv4(10, 0, 2, 1);
  request.clusters = std::move(clusters);
  return request;
}

TEST(Schedulers, ProximityDeploysNearbyAndWaits) {
  auto scheduler = makeProximityScheduler();
  // Nothing runs anywhere: FAST = nearest edge (deploy + wait), BEST empty.
  auto decision = scheduler->decide(makeRequest(
      {makeView("near", 0, 0), makeView("far", 1, 0),
       makeView("cloud", 100, 1, true)}));
  ASSERT_TRUE(decision.fast.has_value());
  EXPECT_EQ(*decision.fast, "near");
  EXPECT_FALSE(decision.best.has_value());
  EXPECT_FALSE(decision.deploysWithoutWaiting());
}

TEST(Schedulers, ProximityPrefersNearestEvenIfFarRuns) {
  auto scheduler = makeProximityScheduler();
  const auto decision = scheduler->decide(makeRequest(
      {makeView("near", 0, 0), makeView("far", 1, 1),
       makeView("cloud", 100, 1, true)}));
  ASSERT_TRUE(decision.fast.has_value());
  EXPECT_EQ(*decision.fast, "near");  // waits for the optimal edge
}

TEST(Schedulers, LatencyFirstUsesFarInstanceAndDeploysNear) {
  auto scheduler = makeLatencyFirstScheduler();
  // fig. 3: far edge runs an instance; optimal (near) does not.
  const auto decision = scheduler->decide(makeRequest(
      {makeView("near", 0, 0), makeView("far", 1, 1),
       makeView("cloud", 100, 1, true)}));
  ASSERT_TRUE(decision.fast.has_value());
  EXPECT_EQ(*decision.fast, "far");
  ASSERT_TRUE(decision.best.has_value());
  EXPECT_EQ(*decision.best, "near");
  EXPECT_TRUE(decision.deploysWithoutWaiting());
}

TEST(Schedulers, LatencyFirstWaitsWhenNothingRuns) {
  auto scheduler = makeLatencyFirstScheduler();
  const auto decision = scheduler->decide(makeRequest(
      {makeView("near", 0, 0), makeView("far", 1, 0)}));
  ASSERT_TRUE(decision.fast.has_value());
  EXPECT_EQ(*decision.fast, "near");
  EXPECT_FALSE(decision.deploysWithoutWaiting());
}

TEST(Schedulers, LatencyFirstNoUpgradeWhenNearestAlreadyRuns) {
  auto scheduler = makeLatencyFirstScheduler();
  const auto decision = scheduler->decide(makeRequest(
      {makeView("near", 0, 1), makeView("far", 1, 1)}));
  ASSERT_TRUE(decision.fast.has_value());
  EXPECT_EQ(*decision.fast, "near");
  EXPECT_FALSE(decision.best.has_value());
}

TEST(Schedulers, CloudFallbackForwardsToCloudAndDeploysBest) {
  auto scheduler = makeCloudFallbackScheduler();
  const auto decision = scheduler->decide(makeRequest(
      {makeView("near", 0, 0), makeView("cloud", 100, 1, true)}));
  ASSERT_TRUE(decision.fast.has_value());
  EXPECT_EQ(*decision.fast, "cloud");
  ASSERT_TRUE(decision.best.has_value());
  EXPECT_EQ(*decision.best, "near");
}

TEST(Schedulers, RoundRobinSpreadsAcrossRunningClusters) {
  auto scheduler = makeRoundRobinScheduler();
  const auto request = makeRequest(
      {makeView("a", 0, 1), makeView("b", 1, 1), makeView("cloud", 100, 1, true)});
  std::map<std::string, int> counts;
  for (int i = 0; i < 10; ++i) {
    const auto decision = scheduler->decide(request);
    ASSERT_TRUE(decision.fast.has_value());
    ++counts[*decision.fast];
  }
  EXPECT_EQ(counts["a"], 5);
  EXPECT_EQ(counts["b"], 5);
  EXPECT_EQ(counts.count("cloud"), 0u);  // cloud not in rotation
}

TEST(Schedulers, RegistryCreatesByNameAndRejectsUnknown) {
  auto& registry = SchedulerRegistry::instance();
  for (const char* name :
       {"proximity", "latency-first", "cloud-fallback", "round-robin"}) {
    const auto created = registry.create(name, Config());
    ASSERT_TRUE(created.ok()) << name;
    EXPECT_STREQ(created.value()->name(), name);
  }
  EXPECT_FALSE(registry.create("no-such-scheduler", Config()).ok());
  EXPECT_GE(registry.names().size(), 4u);
}

TEST(Schedulers, CustomSchedulerRegistration) {
  class AlwaysFar final : public GlobalScheduler {
   public:
    const char* name() const override { return "always-far"; }
    GlobalDecision decide(const ScheduleRequest&) override {
      GlobalDecision decision;
      decision.fast = "far";
      return decision;
    }
  };
  SchedulerRegistry::instance().registerScheduler(
      "always-far",
      [](const Config&) { return std::make_unique<AlwaysFar>(); });
  const auto created =
      SchedulerRegistry::instance().create("always-far", Config());
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(*created.value()->decide(makeRequest({})).fast, "far");
}

// ------------------------------------------------------ local scheduler ----

TEST(LocalSchedulers, FirstIsStable) {
  auto scheduler = makeFirstInstanceScheduler();
  const std::vector<Endpoint> instances{
      Endpoint(Ipv4(10, 0, 1, 1), 30000), Endpoint(Ipv4(10, 0, 1, 1), 30001)};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(scheduler->pick(instances, Ipv4(10, 0, 2, 1)), instances[0]);
  }
}

TEST(LocalSchedulers, RoundRobinRotates) {
  auto scheduler = makeInstanceRoundRobinScheduler();
  const std::vector<Endpoint> instances{
      Endpoint(Ipv4(10, 0, 1, 1), 30000), Endpoint(Ipv4(10, 0, 1, 1), 30001),
      Endpoint(Ipv4(10, 0, 1, 1), 30002)};
  std::map<Endpoint, int> counts;
  for (int i = 0; i < 9; ++i) {
    ++counts[scheduler->pick(instances, Ipv4(10, 0, 2, 1))];
  }
  for (const auto& instance : instances) EXPECT_EQ(counts[instance], 3);
}

TEST(LocalSchedulers, ClientHashIsDeterministicPerClient) {
  auto scheduler = makeClientHashScheduler();
  const std::vector<Endpoint> instances{
      Endpoint(Ipv4(10, 0, 1, 1), 30000), Endpoint(Ipv4(10, 0, 1, 1), 30001),
      Endpoint(Ipv4(10, 0, 1, 1), 30002), Endpoint(Ipv4(10, 0, 1, 1), 30003)};
  // Same client -> same instance, always.
  const auto first = scheduler->pick(instances, Ipv4(10, 0, 2, 7));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scheduler->pick(instances, Ipv4(10, 0, 2, 7)), first);
  }
  // Many clients spread over more than one instance.
  std::set<Endpoint> chosen;
  for (int c = 1; c <= 32; ++c) {
    chosen.insert(scheduler->pick(instances,
                                  Ipv4(10, 0, 2, static_cast<std::uint8_t>(c))));
  }
  EXPECT_GT(chosen.size(), 1u);
}

TEST(LocalSchedulers, FactoryByName) {
  EXPECT_STREQ(makeLocalScheduler("first")->name(), "first");
  EXPECT_STREQ(makeLocalScheduler("instance-round-robin")->name(),
               "instance-round-robin");
  EXPECT_STREQ(makeLocalScheduler("client-hash")->name(), "client-hash");
  EXPECT_STREQ(makeLocalScheduler("")->name(), "first");
  EXPECT_STREQ(makeLocalScheduler("garbage")->name(), "first");
}

// Property: FAST, when set, always names a cluster from the request; BEST
// never equals FAST.
class SchedulerProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerProperty, DecisionsAreWellFormed) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<std::unique_ptr<GlobalScheduler>> schedulers;
  schedulers.push_back(makeProximityScheduler());
  schedulers.push_back(makeLatencyFirstScheduler());
  schedulers.push_back(makeCloudFallbackScheduler());
  schedulers.push_back(makeRoundRobinScheduler());

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ClusterView> clusters;
    const auto clusterCount = rng.uniformInt(0, 4);
    for (std::uint64_t i = 0; i < clusterCount; ++i) {
      clusters.push_back(makeView(strprintf("c%llu", (unsigned long long)i),
                                  static_cast<int>(rng.uniformInt(0, 3)),
                                  static_cast<int>(rng.uniformInt(0, 2))));
    }
    if (rng.chance(0.7)) {
      clusters.push_back(makeView("cloud", 100, 1, true));
    }
    const auto request = makeRequest(clusters);
    for (auto& scheduler : schedulers) {
      const auto decision = scheduler->decide(request);
      auto contains = [&](const std::string& name) {
        for (const auto& c : request.clusters) {
          if (c.name == name) return true;
        }
        return false;
      };
      if (decision.fast) {
        EXPECT_TRUE(contains(*decision.fast));
      }
      if (decision.best) {
        EXPECT_TRUE(contains(*decision.best));
        if (decision.fast) {
          EXPECT_NE(*decision.best, *decision.fast);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace edgesim::core
