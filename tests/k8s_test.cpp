// Tests for the Kubernetes substrate: API server stores/watches, the
// Deployment -> ReplicaSet -> Pod reconcile chain, scheduling (including
// custom schedulers, the paper's "Local Scheduler"), kubelet behaviour
// (pulls, readiness probing, restarts), endpoints, scale-to-zero and
// scale-up latency calibration (fig. 11's ~3 s).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "k8s/autoscaler.hpp"
#include "k8s/cluster.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace edgesim::k8s {
namespace {

using namespace timeliterals;
using container::makeImage;

Deployment makeNginxDeployment(const std::string& name, int replicas,
                               const container::ImageRef& image) {
  Deployment deployment;
  deployment.meta.name = name;
  deployment.spec.replicas = replicas;
  deployment.spec.selector = {{"app", name}};
  deployment.spec.podTemplate.labels = {{"app", name},
                                        {"edge.service", name + ":80"}};
  container::ContainerSpec spec;
  spec.name = name;
  spec.image = image;
  spec.containerPort = 80;
  spec.labels = deployment.spec.podTemplate.labels;
  spec.app.startupDelay = 60_ms;
  spec.app.requestCompute = 1_ms;
  deployment.spec.podTemplate.spec.containers.push_back(spec);
  return deployment;
}

Service makeService(const std::string& name) {
  Service service;
  service.meta.name = name;
  service.spec.selector = {{"app", name}};
  service.spec.ports.push_back(ServicePort{80, 80, "TCP"});
  return service;
}

class K8sFixture : public ::testing::Test {
 protected:
  K8sFixture() : sim_(61), net_(sim_) {
    egs_ = std::make_unique<Host>(net_, "egs", Ipv4(10, 0, 1, 1), Mac(0x10));
    store_ = std::make_unique<container::LayerStore>();
    runtime_ = std::make_unique<container::ContainerdRuntime>(sim_, *egs_, *store_);
    puller_ = std::make_unique<container::ImagePuller>(sim_, *store_);
    registry_ = std::make_unique<container::Registry>(
        "hub", container::publicRegistryProfile());

    nginx_ = makeImage(*container::ImageRef::parse("nginx:1.23.2"), 135_MiB, 6);
    registry_->push(nginx_);
    store_->commitImage(nginx_);  // cached by default; pull tests drop this

    NodeHandle node;
    node.name = "egs";
    node.host = egs_.get();
    node.runtime = runtime_.get();
    node.puller = puller_.get();
    node.registry = registry_.get();
    cluster_ = std::make_unique<K8sCluster>(sim_, ControlPlaneParams{},
                                            std::vector<NodeHandle>{node});
  }

  /// Run until `predicate` or `deadline`; returns the time it became true.
  std::optional<SimTime> runUntilTrue(std::function<bool()> predicate,
                                      SimTime deadline) {
    while (sim_.now() < deadline) {
      if (predicate()) return sim_.now();
      if (!sim_.step()) break;
    }
    return predicate() ? std::optional<SimTime>(sim_.now()) : std::nullopt;
  }

  Simulation sim_;
  Network net_;
  std::unique_ptr<Host> egs_;
  std::unique_ptr<container::LayerStore> store_;
  std::unique_ptr<container::ContainerdRuntime> runtime_;
  std::unique_ptr<container::ImagePuller> puller_;
  std::unique_ptr<container::Registry> registry_;
  std::unique_ptr<K8sCluster> cluster_;
  container::Image nginx_;
};

// ----------------------------------------------------------- api server ----

TEST_F(K8sFixture, StoreCreateGetUpdateDelete) {
  auto deployment = makeNginxDeployment("web", 0, nginx_.ref);
  std::optional<Status> created;
  cluster_->api().deployments().create(deployment,
                                       [&](Status s) { created = s; });
  sim_.runUntil(1_s);
  ASSERT_TRUE(created.has_value() && created->ok());
  const Deployment* stored = cluster_->api().deployments().get("web");
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->spec.replicas, 0);
  EXPECT_GT(stored->meta.uid, 0u);

  std::optional<Status> duplicate;
  cluster_->api().deployments().create(deployment,
                                       [&](Status s) { duplicate = s; });
  sim_.runUntil(2_s);
  ASSERT_TRUE(duplicate.has_value());
  EXPECT_EQ(duplicate->error().code, Errc::kAlreadyExists);

  cluster_->api().deployments().update(
      "web", [](Deployment& d) { d.spec.replicas = 3; });
  sim_.runUntil(3_s);
  EXPECT_EQ(cluster_->api().deployments().get("web")->spec.replicas, 3);

  std::optional<Status> removed;
  cluster_->api().deployments().remove("web", [&](Status s) { removed = s; });
  sim_.runUntil(4_s);
  ASSERT_TRUE(removed.has_value() && removed->ok());
  EXPECT_EQ(cluster_->api().deployments().get("web"), nullptr);
}

TEST_F(K8sFixture, WatchDeliversEventsWithLatency) {
  std::vector<std::pair<WatchEventType, SimTime>> events;
  cluster_->api().deployments().watch(
      [&](const WatchEvent<Deployment>& event) {
        events.emplace_back(event.type, sim_.now());
      });
  cluster_->api().deployments().create(makeNginxDeployment("web", 0, nginx_.ref));
  sim_.runUntil(1_s);
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events[0].first, WatchEventType::kAdded);
  // apiLatency + watchLatency at minimum.
  EXPECT_GE(events[0].second, 60_ms);
}

TEST_F(K8sFixture, ResourceVersionMonotone) {
  cluster_->api().deployments().create(makeNginxDeployment("a", 0, nginx_.ref));
  cluster_->api().deployments().create(makeNginxDeployment("b", 0, nginx_.ref));
  sim_.runUntil(1_s);
  const Deployment* a = cluster_->api().deployments().get("a");
  const Deployment* b = cluster_->api().deployments().get("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->meta.resourceVersion, b->meta.resourceVersion);
}

// ------------------------------------------------- reconcile pipeline ----

TEST_F(K8sFixture, ScaleToZeroCreatesNoPods) {
  cluster_->applyDeployment(makeNginxDeployment("web", 0, nginx_.ref));
  sim_.runUntil(5_s);
  EXPECT_NE(cluster_->api().replicaSets().get("web-rs"), nullptr);
  EXPECT_EQ(cluster_->api().pods().size(), 0u);
}

TEST_F(K8sFixture, ScaleUpCreatesRunsAndReadiesPod) {
  cluster_->applyDeployment(makeNginxDeployment("web", 0, nginx_.ref));
  sim_.runUntil(2_s);
  cluster_->scaleDeployment("web", 1);

  const auto readyAt = runUntilTrue(
      [&] {
        const auto pods = cluster_->podsBySelector({{"app", "web"}});
        return pods.size() == 1 && pods[0]->status.ready;
      },
      20_s);
  ASSERT_TRUE(readyAt.has_value());

  const auto pods = cluster_->podsBySelector({{"app", "web"}});
  EXPECT_EQ(pods[0]->status.phase, PodPhase::kRunning);
  EXPECT_EQ(pods[0]->spec.nodeName, "egs");
  EXPECT_NE(pods[0]->status.endpoint.port, 0);

  // fig. 11 calibration: the control-plane chain makes a cached-image
  // scale-up land around 2-4 s (vs. Docker's sub-second).
  const double seconds = readyAt->toSeconds() - 2.0;
  EXPECT_GT(seconds, 1.5);
  EXPECT_LT(seconds, 4.5);
}

TEST_F(K8sFixture, DeploymentStatusRollsUp) {
  cluster_->applyDeployment(makeNginxDeployment("web", 2, nginx_.ref));
  const auto done = runUntilTrue(
      [&] {
        const Deployment* d = cluster_->deployment("web");
        return d != nullptr && d->status.readyReplicas == 2;
      },
      30_s);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(cluster_->deployment("web")->status.replicas, 2);
}

TEST_F(K8sFixture, ScaleDownRemovesPodsAndClosesPorts) {
  cluster_->applyDeployment(makeNginxDeployment("web", 2, nginx_.ref));
  ASSERT_TRUE(runUntilTrue(
                  [&] {
                    const Deployment* d = cluster_->deployment("web");
                    return d != nullptr && d->status.readyReplicas == 2;
                  },
                  30_s)
                  .has_value());

  cluster_->scaleDeployment("web", 0);
  const auto gone = runUntilTrue(
      [&] { return cluster_->podsBySelector({{"app", "web"}}).empty(); }, 30_s);
  ASSERT_TRUE(gone.has_value());
  // All containers stopped on the node.
  const auto remaining = runUntilTrue(
      [&] {
        for (const auto* info : runtime_->list()) {
          if (info->state == container::ContainerState::kRunning) return false;
        }
        return true;
      },
      40_s);
  EXPECT_TRUE(remaining.has_value());
}

TEST_F(K8sFixture, DeleteDeploymentCascades) {
  cluster_->applyDeployment(makeNginxDeployment("web", 1, nginx_.ref));
  ASSERT_TRUE(runUntilTrue(
                  [&] {
                    return !cluster_->podsBySelector({{"app", "web"}}).empty();
                  },
                  20_s)
                  .has_value());
  cluster_->deleteDeployment("web");
  const auto gone = runUntilTrue(
      [&] {
        return cluster_->api().replicaSets().get("web-rs") == nullptr &&
               cluster_->podsBySelector({{"app", "web"}}).empty();
      },
      30_s);
  EXPECT_TRUE(gone.has_value());
}

TEST_F(K8sFixture, UncachedImageIsPulledFirst) {
  // Use an image the node's layer store does not have yet.
  const auto resnet = makeImage(
      *container::ImageRef::parse("gcr.io/tensorflow-serving/resnet:latest"),
      308_MiB, 9);
  registry_->push(resnet);
  cluster_->applyDeployment(makeNginxDeployment("resnet", 1, resnet.ref));
  const auto ready = runUntilTrue(
      [&] {
        const auto pods = cluster_->podsBySelector({{"app", "resnet"}});
        return pods.size() == 1 && pods[0]->status.ready;
      },
      60_s);
  ASSERT_TRUE(ready.has_value());
  // Pull time (~8-9 s for 308 MiB / 9 layers from the public registry)
  // dominates; total must exceed the pure scale-up time by seconds.
  EXPECT_GT(ready->toSeconds(), 7.0);
  EXPECT_EQ(registry_->pullCount(), 1u);
}

// ---------------------------------------------------------- endpoints ----

TEST_F(K8sFixture, EndpointsTrackReadyPods) {
  cluster_->applyService(makeService("web"));
  cluster_->applyDeployment(makeNginxDeployment("web", 0, nginx_.ref));
  sim_.runUntil(3_s);
  EXPECT_TRUE(cluster_->readyEndpoints("web").empty());

  cluster_->scaleDeployment("web", 1);
  const auto ready = runUntilTrue(
      [&] { return cluster_->readyEndpoints("web").size() == 1; }, 20_s);
  ASSERT_TRUE(ready.has_value());

  cluster_->scaleDeployment("web", 0);
  const auto empty = runUntilTrue(
      [&] { return cluster_->readyEndpoints("web").empty(); }, 40_s);
  EXPECT_TRUE(empty.has_value());
}

// ---------------------------------------------------------- scheduler ----

TEST_F(K8sFixture, CustomSchedulerSelectedBySchedulerName) {
  int customCalls = 0;
  cluster_->scheduler().registerStrategy(
      "edge-local-scheduler",
      [&](const Pod&, const std::vector<NodeHandle>& nodes, const Store<Pod>&,
          const std::map<std::string, int>&) -> std::string {
        ++customCalls;
        return nodes[0].name;
      });
  auto deployment = makeNginxDeployment("web", 1, nginx_.ref);
  deployment.spec.podTemplate.spec.schedulerName = "edge-local-scheduler";
  cluster_->applyDeployment(deployment);
  const auto ready = runUntilTrue(
      [&] {
        const auto pods = cluster_->podsBySelector({{"app", "web"}});
        return pods.size() == 1 && pods[0]->status.ready;
      },
      20_s);
  ASSERT_TRUE(ready.has_value());
  EXPECT_GE(customCalls, 1);
}

TEST_F(K8sFixture, UnknownSchedulerLeavesPodPending) {
  auto deployment = makeNginxDeployment("web", 1, nginx_.ref);
  deployment.spec.podTemplate.spec.schedulerName = "no-such-scheduler";
  cluster_->applyDeployment(deployment);
  sim_.runUntil(8_s);
  const auto pods = cluster_->podsBySelector({{"app", "web"}});
  ASSERT_EQ(pods.size(), 1u);
  EXPECT_FALSE(pods[0]->scheduled());
  EXPECT_EQ(pods[0]->status.phase, PodPhase::kPending);
  EXPECT_GE(cluster_->scheduler().unschedulableCount(), 1u);
}

// ------------------------------------------------------------- kubelet ----

TEST_F(K8sFixture, CrashingContainerIsRestarted) {
  auto deployment = makeNginxDeployment("web", 1, nginx_.ref);
  // Crash roughly half the starts; kubelet restarts should still converge.
  deployment.spec.podTemplate.spec.containers[0].app.crashOnStartProbability =
      0.5;
  cluster_->applyDeployment(deployment);
  const auto ready = runUntilTrue(
      [&] {
        const auto pods = cluster_->podsBySelector({{"app", "web"}});
        return !pods.empty() && pods[0]->status.ready;
      },
      120_s);
  // With p=0.5 and restarts + RS replacement, readiness within 2 minutes is
  // effectively certain for this seed.
  ASSERT_TRUE(ready.has_value());
}

TEST_F(K8sFixture, AlwaysCrashingPodGoesFailedAndIsReplaced) {
  auto deployment = makeNginxDeployment("web", 1, nginx_.ref);
  deployment.spec.podTemplate.spec.containers[0].app.crashOnStartProbability =
      1.0;
  cluster_->applyDeployment(deployment);
  sim_.runUntil(60_s);
  // Never ready; the RS keeps replacing failed pods.
  const auto pods = cluster_->podsBySelector({{"app", "web"}});
  for (const auto* pod : pods) EXPECT_FALSE(pod->status.ready);
  std::uint64_t restarts = 0;
  for (auto* kubelet : cluster_->kubelets()) {
    restarts += kubelet->restartedContainers();
  }
  EXPECT_GE(restarts, 1u);
}

// ---------------------------------------------------------- autoscaler ----

TEST_F(K8sFixture, AutoscalerScalesOutUnderLoadAndBackWhenIdle) {
  Host client(net_, "client", Ipv4(10, 0, 0, 9), Mac(0x99));
  net_.connect(client, *egs_, 1_ms, 1_Gbps);

  cluster_->applyService(makeService("web"));
  cluster_->applyDeployment(makeNginxDeployment("web", 1, nginx_.ref));
  ASSERT_TRUE(runUntilTrue(
                  [&] { return cluster_->readyEndpoints("web").size() == 1; },
                  20_s)
                  .has_value());

  auto requestCounter = [this]() -> std::uint64_t {
    std::uint64_t total = 0;
    for (const auto* info : runtime_->list({{"app", "web"}})) {
      total += info->requestsServed;
    }
    return total;
  };
  AutoscalerParams params;
  params.deployment = "web";
  params.minReplicas = 1;
  params.maxReplicas = 5;
  params.targetRequestsPerReplica = 8.0;  // req/s per replica
  params.syncPeriod = 5_s;
  params.downscaleStabilisation = 30_s;
  HorizontalAutoscaler hpa(sim_, *cluster_, params, requestCounter);

  // ~20 req/s of load for 2 minutes, spread over the ready endpoints.
  PeriodicTimer load;
  std::size_t rr = 0;
  load.start(sim_, 50_ms, [&]() -> bool {
    if (sim_.now() > 120_s) return false;
    const auto endpoints = cluster_->readyEndpoints("web");
    if (!endpoints.empty()) {
      client.httpRequest(endpoints[rr++ % endpoints.size()], HttpRequest{},
                         [](Result<HttpExchange>) {});
    }
    return true;
  });

  // 20 req/s at 8 req/s/replica -> desired 3.
  const auto scaledOut = runUntilTrue(
      [&] {
        const Deployment* d = cluster_->deployment("web");
        return d != nullptr && d->spec.replicas == 3 &&
               cluster_->readyEndpoints("web").size() == 3;
      },
      100_s);
  ASSERT_TRUE(scaledOut.has_value());
  EXPECT_GE(hpa.lastObservedRate(), 15.0);
  EXPECT_LE(hpa.lastObservedRate(), 25.0);

  // Load stops at t=120 s; after the stabilisation window the deployment
  // returns to minReplicas.
  const auto scaledIn = runUntilTrue(
      [&] {
        const Deployment* d = cluster_->deployment("web");
        return d != nullptr && d->spec.replicas == 1;
      },
      SimTime::seconds(260.0));
  ASSERT_TRUE(scaledIn.has_value());
  EXPECT_GE(*scaledIn, 150_s);  // not before load-end + stabilisation
  EXPECT_GE(hpa.scaleEvents(), 2u);
}

TEST_F(K8sFixture, AutoscalerRespectsMaxReplicas) {
  Host client(net_, "client", Ipv4(10, 0, 0, 9), Mac(0x99));
  net_.connect(client, *egs_, 1_ms, 1_Gbps);
  cluster_->applyService(makeService("web"));
  cluster_->applyDeployment(makeNginxDeployment("web", 1, nginx_.ref));
  ASSERT_TRUE(runUntilTrue(
                  [&] { return cluster_->readyEndpoints("web").size() == 1; },
                  20_s)
                  .has_value());

  auto requestCounter = [this]() -> std::uint64_t {
    std::uint64_t total = 0;
    for (const auto* info : runtime_->list({{"app", "web"}})) {
      total += info->requestsServed;
    }
    return total;
  };
  AutoscalerParams params;
  params.deployment = "web";
  params.maxReplicas = 2;
  params.targetRequestsPerReplica = 1.0;  // absurdly low: always wants more
  params.syncPeriod = 5_s;
  HorizontalAutoscaler hpa(sim_, *cluster_, params, requestCounter);

  PeriodicTimer load;
  load.start(sim_, 100_ms, [&]() -> bool {
    if (sim_.now() > 60_s) return false;
    const auto endpoints = cluster_->readyEndpoints("web");
    if (!endpoints.empty()) {
      client.httpRequest(endpoints.front(), HttpRequest{},
                         [](Result<HttpExchange>) {});
    }
    return true;
  });
  sim_.runUntil(60_s);
  const Deployment* d = cluster_->deployment("web");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->spec.replicas, 2);  // clamped
  EXPECT_EQ(hpa.lastDesiredReplicas(), 2);
}

// ------------------------------------------------------- multi-node ----

TEST(K8sMultiNode, LeastLoadedSpreadsPods) {
  Simulation sim(71);
  Network net(sim);
  Host hostA(net, "node-a", Ipv4(10, 0, 1, 1), Mac(0x10));
  Host hostB(net, "node-b", Ipv4(10, 0, 1, 2), Mac(0x11));
  container::LayerStore storeA;
  container::LayerStore storeB;
  container::ContainerdRuntime runtimeA(sim, hostA, storeA);
  container::ContainerdRuntime runtimeB(sim, hostB, storeB);
  container::ImagePuller pullerA(sim, storeA);
  container::ImagePuller pullerB(sim, storeB);
  const auto nginx =
      makeImage(*container::ImageRef::parse("nginx:1.23.2"), 135_MiB, 6);
  storeA.commitImage(nginx);
  storeB.commitImage(nginx);

  NodeHandle a{"node-a", &hostA, &runtimeA, &pullerA, nullptr, 110};
  NodeHandle b{"node-b", &hostB, &runtimeB, &pullerB, nullptr, 110};
  K8sCluster cluster(sim, ControlPlaneParams{}, {a, b});

  cluster.applyDeployment(makeNginxDeployment("web", 4, nginx.ref));
  sim.runUntil(30_s);

  int onA = 0;
  int onB = 0;
  for (const auto* pod : cluster.podsBySelector({{"app", "web"}})) {
    if (pod->spec.nodeName == "node-a") ++onA;
    if (pod->spec.nodeName == "node-b") ++onB;
  }
  EXPECT_EQ(onA + onB, 4);
  EXPECT_EQ(onA, 2);
  EXPECT_EQ(onB, 2);
}

TEST(K8sMultiNode, CapacityExhaustionLeavesPodsPending) {
  Simulation sim(72);
  Network net(sim);
  Host hostA(net, "node-a", Ipv4(10, 0, 1, 1), Mac(0x10));
  container::LayerStore storeA;
  container::ContainerdRuntime runtimeA(sim, hostA, storeA);
  container::ImagePuller pullerA(sim, storeA);
  const auto nginx =
      makeImage(*container::ImageRef::parse("nginx:1.23.2"), 135_MiB, 6);
  storeA.commitImage(nginx);

  NodeHandle a{"node-a", &hostA, &runtimeA, &pullerA, nullptr, 2};
  K8sCluster cluster(sim, ControlPlaneParams{}, {a});
  cluster.applyDeployment(makeNginxDeployment("web", 5, nginx.ref));
  sim.runUntil(30_s);

  int scheduled = 0;
  int pending = 0;
  for (const auto* pod : cluster.podsBySelector({{"app", "web"}})) {
    if (pod->scheduled()) {
      ++scheduled;
    } else {
      ++pending;
    }
  }
  EXPECT_EQ(scheduled, 2);
  EXPECT_EQ(pending, 3);
}

}  // namespace
}  // namespace edgesim::k8s
