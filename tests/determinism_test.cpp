// Determinism regression guard for the sharded/concurrent controller work.
//
// The discrete-event core is single-threaded and deterministic; the
// concurrency refactor (sharded FlowMemory, controller worker pool,
// thread-safe recorders) must not perturb it.  In the style of the
// FaultInvariant suite this runs a fixed controller scenario -- cold
// deployments, warm repeats, flow-memory expiry, scale-down, re-deploy --
// and asserts that
//
//   1. the exported trace and metrics summary are BYTEWISE identical to
//      golden files captured from the pre-shard seed (single-worker mode
//      must stay bit-identical, not just statistically equivalent);
//   2. re-running the scenario in the same process reproduces the same
//      bytes (no hidden global state);
//   3. a sharded FlowMemory (shards > 1) driven single-threaded still
//      yields the same request outcomes and per-request trace content.
//
// Regenerate the goldens (only when an intentional behavior change lands):
//   EDGESIM_WRITE_GOLDEN=1 ./build/tests/determinism_test
#include <gtest/gtest.h>

#include <string>

#include "determinism_scenario.hpp"
#include "mobility/attachment.hpp"
#include "mobility/handover.hpp"
#include "mobility/mobility_model.hpp"
#include "util/strings.hpp"
#include "workload/mobility_paths.hpp"

namespace edgesim::core {
namespace {

using namespace timeliterals;

const Endpoint kNginxAddr = kScenarioNginxAddr;

/// The mobility variant: three clients commute from the EGS cell to the
/// far-edge cell while the handover manager re-steers their flows (first
/// handover deploys at the target, the rest re-steer warm).  The exported
/// bytes include the handover accounting, so any drift in the handover
/// state machine's event order shows up bytewise.
ScenarioResult runMobilityScenario(std::uint64_t seed) {
  TestbedOptions options;
  options.seed = seed;
  options.clientCount = 6;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.farEdge = true;
  options.controller.memoryIdleTimeout = 30_s;
  options.controller.memoryScanPeriod = 500_ms;
  Testbed bed(options);

  bed.warmImageCache("nginx");
  EXPECT_TRUE(bed.registerCatalogService("nginx", kNginxAddr).ok());

  mobility::MobilityModel model({{"bs-egs", {0.0, 0.0}, "docker-egs"},
                                 {"bs-far", {1000.0, 0.0}, "docker-far"}});
  workload::CommuteWaveParams wave;
  wave.seed = seed * 101 + 3;
  wave.clients = 3;
  wave.origin = {0.0, 0.0};
  wave.destination = {1000.0, 0.0};
  wave.scatterRadius = 50.0;
  wave.firstDeparture = 6_s;
  wave.departureWindow = 4_s;
  wave.travelTime = 4_s;
  const auto paths = workload::commuteWavePaths(wave);
  for (std::size_t i = 0; i < wave.clients; ++i) {
    model.setPath(Ipv4(10, 0, 2, static_cast<std::uint8_t>(i + 1)), paths[i]);
  }
  mobility::AttachmentManager attachments(bed.sim(), model,
                                          {.scanPeriod = 500_ms});
  mobility::HandoverManager handovers(bed.controller(), attachments);
  handovers.start();

  Simulation& sim = bed.sim();
  sim.scheduleAt(1_s, [&] {
    bed.requestCatalog(0, "nginx", kNginxAddr, "nginx/pre-move");
    bed.requestCatalog(1, "nginx", kNginxAddr, "nginx/pre-move");
    bed.requestCatalog(2, "nginx", kNginxAddr, "nginx/pre-move");
  });
  sim.scheduleAt(20_s, [&] {
    bed.requestCatalog(0, "nginx", kNginxAddr, "nginx/post-move");
    bed.requestCatalog(1, "nginx", kNginxAddr, "nginx/post-move");
    bed.requestCatalog(2, "nginx", kNginxAddr, "nginx/post-move");
  });
  sim.runUntil(30_s);

  ScenarioResult result;
  result.traceJson = bed.trace().chromeTraceJson(2);
  result.metricsTable = bed.recorder().summaryTable().render();
  result.counters = strprintf(
      "packet_ins=%llu resolved=%llu failed=%llu degraded=%llu "
      "scale_downs=%llu memory=%zu handovers_started=%llu "
      "handovers_completed=%llu handovers_aborted=%llu triggered=%llu "
      "attachment_changes=%llu\n",
      static_cast<unsigned long long>(bed.controller().packetInCount()),
      static_cast<unsigned long long>(bed.controller().requestsResolved()),
      static_cast<unsigned long long>(bed.controller().requestsFailed()),
      static_cast<unsigned long long>(bed.controller().requestsDegraded()),
      static_cast<unsigned long long>(bed.controller().scaleDowns()),
      bed.controller().flowMemory().size(),
      static_cast<unsigned long long>(bed.controller().handoversStarted()),
      static_cast<unsigned long long>(bed.controller().handoversCompleted()),
      static_cast<unsigned long long>(
          bed.controller().handoversAbortedToCloud()),
      static_cast<unsigned long long>(handovers.handoversTriggered()),
      static_cast<unsigned long long>(attachments.attachmentChanges()));
  return result;
}

std::string mobilityGoldenPath(std::uint64_t seed) {
  return strprintf("%s/determinism_mobility_seed%llu.txt", EDGESIM_GOLDEN_DIR,
                   static_cast<unsigned long long>(seed));
}

class DeterminismGolden : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismGolden, SingleWorkerMatchesPreShardSeedTrace) {
  const std::uint64_t seed = GetParam();
  const auto result = runScenario(seed, /*flowShards=*/1);
  const std::string path = goldenPath(seed);
  if (writeGoldenRequested()) {
    writeFile(path, result.combined());
    GTEST_SKIP() << "golden written to " << path;
  }
  const std::string golden = readFile(path);
  ASSERT_FALSE(golden.empty())
      << "missing golden " << path
      << " (run with EDGESIM_WRITE_GOLDEN=1 to create it)";
  // Bytewise, not structural: any drift in event order, span IDs, or
  // formatting is a determinism regression.
  EXPECT_EQ(result.combined(), golden);
}

TEST_P(DeterminismGolden, RerunIsBitIdentical) {
  const std::uint64_t seed = GetParam();
  const auto first = runScenario(seed, /*flowShards=*/1);
  const auto second = runScenario(seed, /*flowShards=*/1);
  EXPECT_EQ(first.combined(), second.combined());
}

TEST_P(DeterminismGolden, ShardedSingleThreadKeepsOutcomes) {
  // With shards > 1 the expiry *iteration order* may legally differ, but a
  // single-threaded run must still resolve the same requests with the same
  // totals: the metrics summary and counters are order-insensitive here
  // because every series is keyed, and the scenario's expiries are disjoint.
  const std::uint64_t seed = GetParam();
  const auto flat = runScenario(seed, /*flowShards=*/1);
  const auto sharded = runScenario(seed, /*flowShards=*/8);
  EXPECT_EQ(flat.metricsTable, sharded.metricsTable);
  EXPECT_EQ(flat.counters, sharded.counters);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismGolden, ::testing::Values(1u, 7u));

// Mobility keeps determinism: with the handover manager driving re-steers,
// runs are still bytewise reproducible under their own golden -- and since
// the base scenario above never constructs the mobility layer, the
// pre-mobility goldens stay bit-identical too (checked by the suite above).
class MobilityGolden : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MobilityGolden, SeededMobilityMatchesGolden) {
  const std::uint64_t seed = GetParam();
  const auto result = runMobilityScenario(seed);
  const std::string path = mobilityGoldenPath(seed);
  if (writeGoldenRequested()) {
    writeFile(path, result.combined());
    GTEST_SKIP() << "golden written to " << path;
  }
  const std::string golden = readFile(path);
  ASSERT_FALSE(golden.empty())
      << "missing golden " << path
      << " (run with EDGESIM_WRITE_GOLDEN=1 to create it)";
  EXPECT_EQ(result.combined(), golden);
}

TEST_P(MobilityGolden, RerunIsBitIdentical) {
  const std::uint64_t seed = GetParam();
  const auto first = runMobilityScenario(seed);
  const auto second = runMobilityScenario(seed);
  EXPECT_EQ(first.combined(), second.combined());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MobilityGolden, ::testing::Values(1u, 7u));

}  // namespace
}  // namespace edgesim::core
