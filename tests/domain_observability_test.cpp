// Observability of the parallel time-domain core (telemetry::DomainProbe,
// DomainScheduler::RunStats, trace::analyzeDomainTrace).
//
// The invariants under test:
//
//   * CONSERVATION: the per-domain events_executed counters must sum to
//     exactly the sequential driver's event count at any domain/worker
//     count -- instrumentation that loses or double-counts events is
//     worse than none.
//   * ATTRIBUTION: a stall may only ever be attributed to a domain that
//     actually has a channel into the stalled domain.
//   * PAIRING: every cross-domain send span has exactly one matching
//     receive, linked by a unique flow id.
//   * WATCHDOG ACCOUNTING: productive + redundant == total watchdog
//     wakes, and redundant wakes stay bounded by passes x domains -- a
//     lost-wakeup regression shows up as PRODUCTIVE watchdog wakes doing
//     the notification path's job (see DomainScheduler::RunStats).
//   * STRAGGLER: the critical-path analyzer names an artificially slowed
//     domain as the straggler of a skewed run.
//
// Runs under `ctest -L concurrency`, so the TSan CI job checks that the
// probe's callbacks are race-free against the parallel scheduler.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>

#include "sim/domain_scheduler.hpp"
#include "telemetry/domain_probe.hpp"
#include "trace/critical_path.hpp"
#include "trace/trace_recorder.hpp"
#include "util/lane_executor.hpp"
#include "workload/cluster_trace.hpp"

namespace edgesim::telemetry {
namespace {

workload::ClusterTraceParams traceParams() {
  workload::ClusterTraceParams params;
  params.seed = 7;
  params.clusters = 8;
  params.requestsPerCluster = 40;
  return params;
}

std::uint64_t sequentialEventCount() {
  Simulation sim(7);
  workload::ClusterTraceRunner trace(sim, traceParams(), /*domainCount=*/1);
  trace.arm();
  sim.runUntil(trace.horizon());
  return sim.processedEvents();
}

TEST(DomainObservability, EventsConservation) {
  const std::uint64_t reference = sequentialEventCount();
  ASSERT_GT(reference, 0u);
  for (const std::uint32_t domains : {2u, 4u, 8u}) {
    Simulation sim(7);
    workload::ClusterTraceRunner trace(sim, traceParams(), domains);
    MetricsRegistry registry;
    DomainProbe probe(sim, &registry, /*recorder=*/nullptr);
    trace.arm();
    LaneExecutor pool(4);
    DomainScheduler scheduler(sim);
    scheduler.runParallel(pool, trace.horizon());
    const TelemetrySnapshot snap = registry.snapshot(0.0);
    EXPECT_EQ(snap.counterTotal("edgesim_domain_events_total"),
              sim.processedEvents())
        << domains << " domains: probe lost or double-counted events";
    EXPECT_EQ(snap.counterTotal("edgesim_domain_events_total"), reference)
        << domains << " domains diverged from the sequential event count";
  }
}

TEST(DomainObservability, StallAttributionNamesConnectedInboundChannel) {
  Simulation sim(7);
  workload::ClusterTraceRunner trace(
      sim, traceParams(), /*domainCount=*/4,
      [] { std::this_thread::sleep_for(std::chrono::microseconds(50)); });
  MetricsRegistry registry;
  DomainProbe probe(sim, &registry, /*recorder=*/nullptr);
  trace.arm();
  LaneExecutor pool(4);
  DomainScheduler scheduler(sim);
  scheduler.runParallel(pool, trace.horizon());

  const TelemetrySnapshot snap = registry.snapshot(0.0);
  std::uint64_t stalls = 0;
  for (const auto& counter : snap.counters) {
    if (counter.name != "edgesim_domain_stalls_total") continue;
    stalls += counter.value;
    DomainId domain = kNoDomainId, boundBy = kNoDomainId;
    for (const auto& [key, value] : counter.labels) {
      if (key == "domain") domain = static_cast<DomainId>(std::stoul(value));
      if (key == "bound_by") boundBy = static_cast<DomainId>(std::stoul(value));
    }
    ASSERT_NE(domain, kNoDomainId);
    ASSERT_NE(boundBy, kNoDomainId);
    EXPECT_NE(sim.domainLookahead(boundBy, domain), SimTime::max())
        << "stall on domain " << domain << " attributed to domain " << boundBy
        << ", which has no channel into it";
  }
  // A lookahead-bounded parallel run of this size always stalls somewhere;
  // zero stalls would mean the bookkeeping broke, not that the run was
  // perfectly parallel.
  EXPECT_GT(stalls, 0u);
}

TEST(DomainObservability, SendReceiveSpansPairExactly) {
  Simulation sim(7);
  workload::ClusterTraceRunner trace(sim, traceParams(), /*domainCount=*/4);
  MetricsRegistry registry;
  trace::TraceRecorder recorder;
  DomainProbe probe(sim, &registry, &recorder);
  trace.arm();
  LaneExecutor pool(4);
  DomainScheduler scheduler(sim);
  scheduler.runParallel(pool, trace.horizon());

  std::uint64_t sends = 0, recvs = 0;
  for (const auto& span : recorder.spans()) {
    if (span.name == "xdom-send") ++sends;
    if (span.name == "xdom-recv") ++recvs;
  }
  EXPECT_GT(sends, 0u);
  EXPECT_EQ(sends, recvs);

  // Each flow id must appear exactly twice: one begin (source track), one
  // end (target track).
  std::map<std::uint64_t, std::pair<int, int>> flows;  // flow -> (begins, ends)
  for (const auto& flow : recorder.flows()) {
    if (flow.begin) {
      flows[flow.flow].first++;
    } else {
      flows[flow.flow].second++;
    }
  }
  EXPECT_EQ(flows.size(), sends);
  for (const auto& [flow, counts] : flows) {
    EXPECT_EQ(counts.first, 1) << "flow " << flow;
    EXPECT_EQ(counts.second, 1) << "flow " << flow;
  }

  // The message counters tell the same story as the spans.
  const TelemetrySnapshot snap = registry.snapshot(0.0);
  EXPECT_EQ(snap.counterTotal("edgesim_domain_channel_messages_total"),
            sends);
}

TEST(DomainObservability, WatchdogWakeAccounting) {
  Simulation sim(7);
  workload::ClusterTraceRunner trace(
      sim, traceParams(), /*domainCount=*/4,
      [] { std::this_thread::sleep_for(std::chrono::microseconds(20)); });
  MetricsRegistry registry;
  DomainProbe probe(sim, &registry, /*recorder=*/nullptr);
  trace.arm();
  LaneExecutor pool(4);
  DomainScheduler scheduler(sim);
  scheduler.runParallel(pool, trace.horizon());

  const DomainScheduler::RunStats stats = scheduler.lastRunStats();
  EXPECT_GT(stats.advanceTasks, 0u);
  EXPECT_GT(stats.notifyWakes, 0u) << "downstream notification never fired";
  EXPECT_EQ(stats.watchdogWakes,
            stats.watchdogProductive + stats.watchdogRedundant);
  // Redundant wakes are the watchdog finding nothing to do: at most one
  // per domain per sweep.
  EXPECT_LE(stats.watchdogRedundant, stats.watchdogPasses * 4);
  // The lost-wakeup tripwire: with the notification path healthy, the
  // watchdog contributes a bounded trickle of PRODUCTIVE wakes (races
  // where it won against an in-flight notify), not a steady share of all
  // advances.  A lost wakeup turns this into O(advanceTasks) -- every
  // advance watchdog-driven -- so half of them (plus slack) still trips;
  // the slack absorbs sanitizer slowdown, which legitimately shifts more
  // race wins toward the watchdog.
  EXPECT_LE(stats.watchdogProductive, stats.advanceTasks / 2 + 128);

  // The probe's counters mirror the scheduler's always-on stats.
  const TelemetrySnapshot snap = registry.snapshot(0.0);
  EXPECT_EQ(snap.counterTotal("edgesim_domain_watchdog_passes_total"),
            stats.watchdogPasses);
  EXPECT_EQ(snap.counterValue("edgesim_domain_watchdog_wakes_total",
                              {{"result", "productive"}}),
            stats.watchdogProductive);
  EXPECT_EQ(snap.counterValue("edgesim_domain_watchdog_wakes_total",
                              {{"result", "redundant"}}),
            stats.watchdogRedundant);
}

TEST(DomainObservability, CriticalPathNamesSkewedStraggler) {
  // Domain 2 pays 2 ms per event, everyone else 50 us: the analyzer must
  // name it the straggler of the run.
  constexpr DomainId kSlowDomain = 2;
  Simulation sim(7);
  workload::ClusterTraceRunner trace(
      sim, traceParams(), /*domainCount=*/4, [] {
        const EventDomain* domain = EventDomain::current();
        const bool slow = domain != nullptr && domain->id() == kSlowDomain;
        std::this_thread::sleep_for(slow ? std::chrono::milliseconds(2)
                                         : std::chrono::microseconds(50));
      });
  MetricsRegistry registry;
  trace::TraceRecorder recorder;
  DomainProbe probe(sim, &registry, &recorder);
  trace.arm();
  LaneExecutor pool(4);
  DomainScheduler scheduler(sim);
  scheduler.runParallel(pool, trace.horizon());

  const auto report = trace::analyzeDomainTrace(recorder.chromeTrace());
  ASSERT_TRUE(report.ok()) << report.error().toString();
  const trace::CriticalPathReport& cp = report.value();
  EXPECT_EQ(cp.straggler, static_cast<std::int64_t>(kSlowDomain));
  EXPECT_GT(cp.parallelEfficiency, 0.0);
  EXPECT_LE(cp.parallelEfficiency, 1.0 + 1e-9);
  EXPECT_GT(cp.makespanSeconds, 0.0);
  ASSERT_EQ(cp.domains.size(), 4u);
  for (const auto& domain : cp.domains) {
    EXPECT_LE(domain.busySeconds + domain.stallSeconds,
              cp.makespanSeconds * 1.05 + 1e-3)
        << "domain " << domain.track
        << " booked more busy+stall time than the makespan";
  }
  // The named track carries the domain's name.
  EXPECT_NE(cp.domainName(kSlowDomain).find("trace-"), std::string::npos);
}

TEST(DomainObservability, PromExportWithDomainSeriesLints) {
  Simulation sim(7);
  workload::ClusterTraceRunner trace(sim, traceParams(), /*domainCount=*/4);
  MetricsRegistry registry;
  DomainProbe probe(sim, &registry, /*recorder=*/nullptr);
  trace.arm();
  LaneExecutor pool(4);
  DomainScheduler scheduler(sim);
  scheduler.runParallel(pool, trace.horizon());

  const TelemetrySnapshot snap = registry.snapshot(0.0);
  EXPECT_GT(snap.counterTotal("edgesim_domain_events_total"), 0u);
  const auto lint = lintPrometheus(snap.toPrometheus());
  EXPECT_TRUE(lint.ok()) << lint.error().toString();
}

}  // namespace
}  // namespace edgesim::telemetry
