// Tests for the network substrate: addressing, links and timing, the
// lightweight TCP (handshake, refusal, retransmission), and HTTP exchanges.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "net/host.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace edgesim {
namespace {

using namespace timeliterals;

// ---------------------------------------------------------------- addr ----

TEST(Addr, Ipv4ParseFormat) {
  const auto ip = Ipv4::parse("10.0.1.200");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->toString(), "10.0.1.200");
  EXPECT_EQ(Ipv4(10, 0, 1, 200), *ip);
  EXPECT_FALSE(Ipv4::parse("10.0.1").has_value());
  EXPECT_FALSE(Ipv4::parse("10.0.1.256").has_value());
  EXPECT_FALSE(Ipv4::parse("10.0.1.x").has_value());
  EXPECT_FALSE(Ipv4::parse("").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").has_value());
}

TEST(Addr, EndpointParseFormat) {
  const auto ep = Endpoint::parse("192.168.0.1:8080");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->ip, Ipv4(192, 168, 0, 1));
  EXPECT_EQ(ep->port, 8080);
  EXPECT_EQ(ep->toString(), "192.168.0.1:8080");
  EXPECT_FALSE(Endpoint::parse("192.168.0.1").has_value());
  EXPECT_FALSE(Endpoint::parse("192.168.0.1:99999").has_value());
  EXPECT_FALSE(Endpoint::parse("192.168.0.1:").has_value());
}

TEST(Addr, MacFormat) {
  EXPECT_EQ(Mac(0x0123456789abULL).toString(), "01:23:45:67:89:ab");
  EXPECT_EQ(Mac::broadcast().toString(), "ff:ff:ff:ff:ff:ff");
}

TEST(Addr, EndpointOrderingAndHash) {
  const Endpoint a(Ipv4(10, 0, 0, 1), 80);
  const Endpoint b(Ipv4(10, 0, 0, 1), 81);
  const Endpoint c(Ipv4(10, 0, 0, 2), 80);
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_EQ(std::hash<Endpoint>{}(a), std::hash<Endpoint>{}(Endpoint(Ipv4(10, 0, 0, 1), 80)));
}

// -------------------------------------------------------------- packet ----

TEST(Packet, BuildersSetFlags) {
  const Endpoint src(Ipv4(1, 1, 1, 1), 1234);
  const Endpoint dst(Ipv4(2, 2, 2, 2), 80);
  const auto syn = makeSyn(Mac(1), src, dst);
  EXPECT_TRUE(syn.hasFlag(tcpflags::kSyn));
  EXPECT_FALSE(syn.hasFlag(tcpflags::kAck));
  const auto synAck = makeSynAck(Mac(2), dst, src);
  EXPECT_TRUE(synAck.hasFlag(tcpflags::kSyn));
  EXPECT_TRUE(synAck.hasFlag(tcpflags::kAck));
  const auto rst = makeRst(Mac(1), src, dst);
  EXPECT_TRUE(rst.hasFlag(tcpflags::kRst));
  EXPECT_EQ(syn.srcEndpoint(), src);
  EXPECT_EQ(syn.dstEndpoint(), dst);
}

TEST(Packet, WireSizeIncludesHeaders) {
  const Endpoint src(Ipv4(1, 1, 1, 1), 1234);
  const Endpoint dst(Ipv4(2, 2, 2, 2), 80);
  const auto syn = makeSyn(Mac(1), src, dst);
  EXPECT_EQ(syn.wireSize(), Bytes{54});
  const auto data = makeData(Mac(1), src, dst, 1000_B, nullptr);
  EXPECT_EQ(data.wireSize(), Bytes{1054});
}

// ----------------------------------------------------- network fixture ----

class TwoHosts : public ::testing::Test {
 protected:
  TwoHosts()
      : sim_(7),
        net_(sim_),
        client_(net_, "client", Ipv4(10, 0, 0, 1), Mac(0x01)),
        server_(net_, "server", Ipv4(10, 0, 0, 2), Mac(0x02)) {
    net_.connect(client_, server_, 1_ms, 1_Gbps);
  }

  Simulation sim_;
  Network net_;
  Host client_;
  Host server_;
};

TEST_F(TwoHosts, HttpExchangeSucceeds) {
  server_.listen(80, [](const HttpRequest& req, HttpRespond respond) {
    EXPECT_EQ(req.path, "/index.html");
    HttpResponse resp;
    resp.status = 200;
    resp.body = "hello";
    respond(resp);
  });

  std::optional<Result<HttpExchange>> got;
  HttpRequest req;
  req.path = "/index.html";
  client_.httpRequest(Endpoint(server_.ip(), 80), req,
                      [&](Result<HttpExchange> r) { got = std::move(r); });
  sim_.run();

  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok());
  EXPECT_EQ(got->value().response.status, 200);
  EXPECT_EQ(got->value().response.body, "hello");
  // Four one-way trips (SYN, SYN-ACK, DATA req, DATA resp) at 1 ms each,
  // plus serialisation.
  const auto total = got->value().timings.timeTotal();
  EXPECT_GE(total, 4_ms);
  EXPECT_LT(total, 5_ms);
  EXPECT_GE(got->value().timings.timeConnect(), 2_ms);
  EXPECT_LT(got->value().timings.timeConnect(), 3_ms);
  EXPECT_EQ(got->value().timings.synRetransmits, 0);
}

TEST_F(TwoHosts, ClosedPortRefusedQuickly) {
  std::optional<Result<HttpExchange>> got;
  client_.httpRequest(Endpoint(server_.ip(), 81), HttpRequest{},
                      [&](Result<HttpExchange> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value());
  ASSERT_FALSE(got->ok());
  EXPECT_EQ(got->error().code, Errc::kUnavailable);
  EXPECT_EQ(server_.refusedConnections(), 1u);
}

TEST_F(TwoHosts, LateListenerAnswersRetransmittedSyn) {
  // Port opens 1.5 s after the first SYN: initial SYN refused? No --
  // listener opens before the SYN arrives? Here the listener starts closed,
  // so the first SYN gets RST and the request fails fast.  Instead verify
  // retransmission by delaying the *link* response: use a server that only
  // listens after 1.5 s and a client that starts at t=0 with the SYN lost
  // to a closed port -> RST -> kUnavailable.  True waiting behaviour (hold
  // the packet) is the SDN controller's job, tested in the openflow suite.
  std::optional<Result<HttpExchange>> got;
  client_.httpRequest(Endpoint(server_.ip(), 80), HttpRequest{},
                      [&](Result<HttpExchange> r) { got = std::move(r); });
  sim_.schedule(1500_ms, [&] {
    server_.listen(80, [](const HttpRequest&, HttpRespond respond) {
      respond(HttpResponse{});
    });
  });
  sim_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->ok());  // refused before the listener opened
}

TEST_F(TwoHosts, ResponseComputeDelayIsIncluded) {
  server_.listen(80, [this](const HttpRequest&, HttpRespond respond) {
    sim_.schedule(250_ms, [respond] {
      HttpResponse resp;
      respond(resp);
    });
  });
  std::optional<Result<HttpExchange>> got;
  client_.httpRequest(Endpoint(server_.ip(), 80), HttpRequest{},
                      [&](Result<HttpExchange> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_GE(got->value().timings.timeTotal(), 254_ms);
  EXPECT_LT(got->value().timings.timeTotal(), 256_ms);
}

TEST_F(TwoHosts, LargePayloadPaysSerialisation) {
  server_.listen(80, [](const HttpRequest& req, HttpRespond respond) {
    HttpResponse resp;
    resp.payload = req.payload;  // echo size
    respond(resp);
  });
  std::optional<Result<HttpExchange>> got;
  HttpRequest req;
  req.payload = 10_MiB;
  client_.httpRequest(Endpoint(server_.ip(), 80), req,
                      [&](Result<HttpExchange> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value() && got->ok());
  // 10 MiB at 1 Gbps ~ 84 ms each way; two large segments + 4 ms RTTs.
  EXPECT_GE(got->value().timings.timeTotal(), 160_ms);
  EXPECT_LT(got->value().timings.timeTotal(), 200_ms);
}

TEST_F(TwoHosts, TcpProbeOpenAndClosed) {
  server_.listen(80, [](const HttpRequest&, HttpRespond respond) {
    respond(HttpResponse{});
  });
  std::optional<bool> open80;
  std::optional<bool> open81;
  client_.tcpProbe(Endpoint(server_.ip(), 80),
                   [&](bool open) { open80 = open; });
  client_.tcpProbe(Endpoint(server_.ip(), 81),
                   [&](bool open) { open81 = open; });
  sim_.run();
  ASSERT_TRUE(open80.has_value());
  ASSERT_TRUE(open81.has_value());
  EXPECT_TRUE(*open80);
  EXPECT_FALSE(*open81);
}

TEST_F(TwoHosts, ProbeTimesOutWhenPeerSilent) {
  // Probe an address that no host owns: the packet is delivered to the
  // server (only peer) which ignores the foreign destination IP.
  std::optional<bool> result;
  client_.tcpProbe(Endpoint(Ipv4(10, 9, 9, 9), 80),
                   [&](bool open) { result = open; }, 300_ms);
  sim_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(*result);
  EXPECT_EQ(sim_.now(), 300_ms);
}

TEST_F(TwoHosts, SequentialRequestsGetDistinctPorts) {
  int completed = 0;
  server_.listen(80, [](const HttpRequest&, HttpRespond respond) {
    respond(HttpResponse{});
  });
  for (int i = 0; i < 10; ++i) {
    client_.httpRequest(Endpoint(server_.ip(), 80), HttpRequest{},
                        [&](Result<HttpExchange> r) {
                          ASSERT_TRUE(r.ok());
                          ++completed;
                        });
  }
  sim_.run();
  EXPECT_EQ(completed, 10);
}

TEST_F(TwoHosts, CloseListenerRefusesNewConnections) {
  server_.listen(80, [](const HttpRequest&, HttpRespond respond) {
    respond(HttpResponse{});
  });
  server_.closeListener(80);
  std::optional<Result<HttpExchange>> got;
  client_.httpRequest(Endpoint(server_.ip(), 80), HttpRequest{},
                      [&](Result<HttpExchange> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->ok());
}

// A pass-through node used to delay/hold packets like a switch would.
class HoldingNode : public NetNode {
 public:
  HoldingNode(Network& network, std::string name)
      : NetNode(network, std::move(name)) {}

  void receive(const Packet& packet, PortId inPort) override {
    if (holding_) {
      held_.emplace_back(packet, inPort);
      return;
    }
    forward(packet, inPort);
  }

  void forward(const Packet& packet, PortId inPort) {
    // two-port pass-through
    network().transmit(*this, inPort == 0 ? 1 : 0, packet);
  }

  void releaseAll() {
    holding_ = false;
    for (const auto& [packet, port] : held_) forward(packet, port);
    held_.clear();
  }

  void hold() { holding_ = true; }
  std::size_t heldCount() const { return held_.size(); }

 private:
  bool holding_ = false;
  std::vector<std::pair<Packet, PortId>> held_;
};

TEST(TcpWaiting, SynRetransmitsWhileHeldThenSucceeds) {
  Simulation sim(11);
  Network net(sim);
  Host client(net, "client", Ipv4(10, 0, 0, 1), Mac(0x01));
  HoldingNode middle(net, "middle");
  Host server(net, "server", Ipv4(10, 0, 0, 2), Mac(0x02));
  net.connect(client, middle, 1_ms, 1_Gbps);   // client port0 <-> middle port0
  net.connect(middle, server, 1_ms, 1_Gbps);   // middle port1 <-> server port0

  server.listen(80, [](const HttpRequest&, HttpRespond respond) {
    respond(HttpResponse{});
  });

  middle.hold();  // emulate "request kept waiting" at the network
  sim.schedule(2500_ms, [&] { middle.releaseAll(); });

  std::optional<Result<HttpExchange>> got;
  client.httpRequest(Endpoint(server.ip(), 80), HttpRequest{},
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  sim.run();

  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  // Held for 2.5 s: client retransmitted the SYN at ~1 s and ~3 s (backoff);
  // by release time at least one retransmit happened.
  EXPECT_GE(got->value().timings.synRetransmits, 1);
  EXPECT_GE(got->value().timings.timeTotal(), 2500_ms);
  EXPECT_LT(got->value().timings.timeTotal(), 2600_ms);
}

TEST(TcpWaiting, RetriesExhaustedYieldsTimeout) {
  Simulation sim(12);
  Network net(sim);
  Host client(net, "client", Ipv4(10, 0, 0, 1), Mac(0x01));
  HoldingNode middle(net, "middle");
  Host server(net, "server", Ipv4(10, 0, 0, 2), Mac(0x02));
  net.connect(client, middle, 1_ms, 1_Gbps);
  net.connect(middle, server, 1_ms, 1_Gbps);
  middle.hold();  // never released

  std::optional<Result<HttpExchange>> got;
  RequestOptions options;
  options.synRto = 100_ms;
  options.maxSynRetries = 3;
  client.httpRequest(Endpoint(server.ip(), 80), HttpRequest{},
                     [&](Result<HttpExchange> r) { got = std::move(r); },
                     options);
  sim.run();
  ASSERT_TRUE(got.has_value());
  ASSERT_FALSE(got->ok());
  EXPECT_EQ(got->error().code, Errc::kTimeout);
  // 100 + 200 + 400 + 800 ms of backoff before giving up.
  EXPECT_GE(sim.now(), 1500_ms);
}

TEST(NetworkTiming, SerialisationQueuesBackToBack) {
  Simulation sim(13);
  Network net(sim);
  Host a(net, "a", Ipv4(10, 0, 0, 1), Mac(0x01));
  Host b(net, "b", Ipv4(10, 0, 0, 2), Mac(0x02));
  // Slow link: 1 Mbps. A 1250-byte packet takes 10 ms to serialise.
  net.connect(a, b, SimTime::zero(), 1_Mbps);

  // Send two equal data packets back to back from a's port 0.
  const Endpoint src(a.ip(), 1000);
  const Endpoint dst(b.ip(), 80);
  const auto p = makeData(Mac(1), src, dst, Bytes{1250 - 54}, nullptr);
  sim.schedule(SimTime::zero(), [&] {
    net.transmit(a, 0, p);
    net.transmit(a, 0, p);
  });
  sim.run();
  // Link busy accounting: each 1250-byte packet serialises for 10 ms, so
  // the second data packet arrives at t=20 ms.  (b answers each stray
  // segment with a small RST, hence 4 total deliveries and a sub-ms tail.)
  EXPECT_EQ(net.deliveredPackets(), 4u);
  EXPECT_GE(sim.now(), 20_ms);
  EXPECT_LT(sim.now(), 21_ms);
}

TEST(NetworkTopology, PeerLookup) {
  Simulation sim;
  Network net(sim);
  Host a(net, "a", Ipv4(1, 0, 0, 1), Mac(1));
  Host b(net, "b", Ipv4(1, 0, 0, 2), Mac(2));
  const auto ports = net.connect(a, b, 1_ms, 1_Gbps);
  EXPECT_EQ(net.peer(a, ports.portA), &b);
  EXPECT_EQ(net.peer(b, ports.portB), &a);
  EXPECT_EQ(net.peer(a, 99), nullptr);
}

TEST(NetworkFailure, DownLinkDropsAndTcpTimesOut) {
  Simulation sim(14);
  Network net(sim);
  Host a(net, "a", Ipv4(10, 0, 0, 1), Mac(1));
  Host b(net, "b", Ipv4(10, 0, 0, 2), Mac(2));
  const auto ports = net.connect(a, b, 1_ms, 1_Gbps);
  b.listen(80, [](const HttpRequest&, HttpRespond respond) {
    respond(HttpResponse{});
  });

  net.setLinkUp(a, ports.portA, false);
  EXPECT_FALSE(net.linkUp(a, ports.portA));
  EXPECT_FALSE(net.linkUp(b, ports.portB));  // both directions down

  std::optional<Result<HttpExchange>> got;
  RequestOptions options;
  options.synRto = 100_ms;
  options.maxSynRetries = 2;
  a.httpRequest(Endpoint(b.ip(), 80), HttpRequest{},
                [&](Result<HttpExchange> r) { got = std::move(r); }, options);
  sim.run();
  ASSERT_TRUE(got.has_value());
  ASSERT_FALSE(got->ok());
  EXPECT_EQ(got->error().code, Errc::kTimeout);
  EXPECT_GE(net.droppedPackets(), 3u);  // initial SYN + 2 retransmits
}

TEST(NetworkFailure, LinkRecoveryLetsRetransmitSucceed) {
  Simulation sim(15);
  Network net(sim);
  Host a(net, "a", Ipv4(10, 0, 0, 1), Mac(1));
  Host b(net, "b", Ipv4(10, 0, 0, 2), Mac(2));
  const auto ports = net.connect(a, b, 1_ms, 1_Gbps);
  b.listen(80, [](const HttpRequest&, HttpRespond respond) {
    respond(HttpResponse{});
  });

  net.setLinkUp(a, ports.portA, false);
  sim.schedule(1500_ms, [&] { net.setLinkUp(a, ports.portA, true); });

  std::optional<Result<HttpExchange>> got;
  a.httpRequest(Endpoint(b.ip(), 80), HttpRequest{},
                [&](Result<HttpExchange> r) { got = std::move(r); });
  sim.run();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  // The SYN retransmitted at 1 s (dropped) and 3 s (delivered).
  EXPECT_GE(got->value().timings.synRetransmits, 2);
  EXPECT_GE(got->value().timings.timeTotal(), 3_s);
}

TEST(NetworkTopology, UnwiredPortDrops) {
  Simulation sim;
  Network net(sim);
  Host a(net, "a", Ipv4(1, 0, 0, 1), Mac(1));
  const auto p = makeSyn(Mac(1), Endpoint(a.ip(), 1), Endpoint(Ipv4(9, 9, 9, 9), 80));
  net.transmit(a, 0, p);
  sim.run();
  EXPECT_EQ(net.droppedPackets(), 1u);
  EXPECT_EQ(net.deliveredPackets(), 0u);
}

}  // namespace
}  // namespace edgesim
