// Shared fixture for the determinism suites (determinism_test and
// domain_determinism_test): one fixed controller lifecycle whose exported
// trace + metrics + counters are compared bytewise against committed
// goldens, plus the golden-file plumbing.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/testbed.hpp"
#include "util/strings.hpp"

#ifndef EDGESIM_GOLDEN_DIR
#define EDGESIM_GOLDEN_DIR "tests/golden"
#endif

namespace edgesim::core {

inline const Endpoint kScenarioNginxAddr{Ipv4(203, 0, 113, 10), 80};
inline const Endpoint kScenarioAsmAddr{Ipv4(203, 0, 113, 20), 80};

struct ScenarioResult {
  std::string traceJson;
  std::string metricsTable;
  std::string counters;
  /// Per-series sample counts + per-series success totals: the
  /// timing-insensitive view for comparisons where event ORDER may
  /// legally differ (sharded expiry scans, per-cluster time domains).
  std::string outcomes;

  std::string combined() const {
    return traceJson + "\n---\n" + metricsTable + "---\n" + counters;
  }
};

/// One fixed controller lifecycle: two services, cold deploys, coalesced
/// joiners, warm repeats, idle expiry driving a scale-down, and a
/// re-deployment after the memory forgot the clients.
inline ScenarioResult runScenario(
    std::uint64_t seed, std::size_t flowShards,
    DomainPartition partition = DomainPartition::kSingle) {
  using namespace timeliterals;
  TestbedOptions options;
  options.seed = seed;
  options.clientCount = 6;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.domainPartition = partition;
  options.controller.memoryIdleTimeout = 3_s;
  options.controller.memoryScanPeriod = 500_ms;
  options.controller.flowShards = flowShards;
  Testbed bed(options);

  bed.warmImageCache("nginx");
  bed.warmImageCache("asm");
  EXPECT_TRUE(bed.registerCatalogService("nginx", kScenarioNginxAddr).ok());
  EXPECT_TRUE(bed.registerCatalogService("asm", kScenarioAsmAddr).ok());

  Simulation& sim = bed.sim();
  // Cold deployment with joiners racing the first request.
  bed.requestCatalog(0, "nginx", kScenarioNginxAddr, "nginx/cold");
  sim.scheduleAt(100_ms, [&] {
    bed.requestCatalog(1, "nginx", kScenarioNginxAddr, "nginx/join");
    bed.requestCatalog(2, "nginx", kScenarioNginxAddr, "nginx/join");
  });
  // Second service, cold.
  sim.scheduleAt(2_s, [&] {
    bed.requestCatalog(3, "asm", kScenarioAsmAddr, "asm/cold");
  });
  // Warm repeats while flows are memorized.
  sim.scheduleAt(5_s, [&] {
    bed.requestCatalog(0, "nginx", kScenarioNginxAddr, "nginx/warm");
    bed.requestCatalog(3, "asm", kScenarioAsmAddr, "asm/warm");
  });
  // Then everyone goes idle: memory expires, services scale down.
  // A late client re-triggers a full cold deployment.
  sim.scheduleAt(20_s, [&] {
    bed.requestCatalog(4, "nginx", kScenarioNginxAddr, "nginx/recold");
  });
  sim.runUntil(40_s);

  ScenarioResult result;
  result.traceJson = bed.trace().chromeTraceJson(2);
  result.metricsTable = bed.recorder().summaryTable().render();
  result.counters = strprintf(
      "packet_ins=%llu resolved=%llu failed=%llu degraded=%llu "
      "scale_downs=%llu removals=%llu migrations=%llu memory=%zu\n",
      static_cast<unsigned long long>(bed.controller().packetInCount()),
      static_cast<unsigned long long>(bed.controller().requestsResolved()),
      static_cast<unsigned long long>(bed.controller().requestsFailed()),
      static_cast<unsigned long long>(bed.controller().requestsDegraded()),
      static_cast<unsigned long long>(bed.controller().scaleDowns()),
      static_cast<unsigned long long>(bed.controller().removals()),
      static_cast<unsigned long long>(bed.controller().migrations()),
      bed.controller().flowMemory().size());
  for (const auto& name : bed.recorder().seriesNames()) {
    std::size_t ok = 0;
    for (const auto& record : bed.recorder().records()) {
      if (record.series == name && record.success) ++ok;
    }
    result.outcomes += strprintf("%s count=%zu ok=%zu\n", name.c_str(),
                                 bed.recorder().series(name)->count(), ok);
  }
  return result;
}

inline std::string goldenPath(std::uint64_t seed) {
  return strprintf("%s/determinism_seed%llu.txt", EDGESIM_GOLDEN_DIR,
                   static_cast<unsigned long long>(seed));
}

inline bool writeGoldenRequested() {
  const char* env = std::getenv("EDGESIM_WRITE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

inline std::string readFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  return text;
}

inline void writeFile(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr) << "cannot write " << path;
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
}

}  // namespace edgesim::core
