// Cross-cutting property and stress tests:
//   * randomly generated yamlite documents round-trip (grammar fuzz),
//   * randomised concurrent workloads through the full testbed always
//     terminate with every request answered exactly once,
//   * end-to-end determinism across seeds,
//   * FlowMemory model-based check against a reference map,
//   * under any seeded fault plan, every resolve terminates in bounded time
//     with an instance or the cloud endpoint -- never a hang or a dangling
//     pending deployment,
//   * under any randomized overload configuration (queue capacity, shed
//     policy, budget, deploy cap, brownout) every submitted request is
//     answered exactly once and the shed accounting balances:
//     submitted == resolved + shed + failed,
//   * under randomized mobility traces crossed with randomized fault plans
//     every request is still answered exactly once and the handover books
//     balance: started == completed + aborted_to_cloud (HandoverContinuity),
//   * under randomized control-channel fault schedules (message loss, outage
//     windows, switch restarts) crossed with workload seeds, once the faults
//     clear the anti-entropy sweeper converges every switch table back to
//     exactly FlowMemory's intended redirect state within two sweep periods,
//     and the install books balance: sent == acked + timed_out
//     (RuleStateConvergence).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/rule_reconciler.hpp"
#include "core/testbed.hpp"
#include "fault/fault_plan.hpp"
#include "mobility/attachment.hpp"
#include "mobility/handover.hpp"
#include "mobility/mobility_model.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workload/mobility_paths.hpp"
#include "yamlite/parse.hpp"

namespace edgesim {
namespace {

using namespace timeliterals;
using core::ClusterMode;
using core::Testbed;
using core::TestbedOptions;

// ------------------------------------------------------- yamlite fuzz ----

yamlite::Node randomNode(Rng& rng, int depth) {
  const double r = rng.uniform01();
  if (depth <= 0 || r < 0.45) {
    // Scalar: mix plain words, numbers, and nasty strings.
    switch (rng.uniformInt(0, 4)) {
      case 0: return yamlite::Node::scalar(strprintf("word%llu",
                  (unsigned long long)rng.uniformInt(0, 99)));
      case 1: return yamlite::Node::scalar(
                  static_cast<std::int64_t>(rng.uniformInt(0, 1000000)));
      case 2: return yamlite::Node::scalar("needs: quoting");
      case 3: return yamlite::Node::scalar("-starts-with-dash");
      default: return yamlite::Node::scalar("with \"quotes\" and\nnewline");
    }
  }
  if (r < 0.7) {
    yamlite::Node seq = yamlite::Node::sequence();
    const auto n = rng.uniformInt(1, 4);
    for (std::uint64_t i = 0; i < n; ++i) {
      seq.push(randomNode(rng, depth - 1));
    }
    return seq;
  }
  yamlite::Node map = yamlite::Node::mapping();
  const auto n = rng.uniformInt(1, 5);
  for (std::uint64_t i = 0; i < n; ++i) {
    map.set(strprintf("key%llu", (unsigned long long)i),
            randomNode(rng, depth - 1));
  }
  return map;
}

class YamlFuzz : public ::testing::TestWithParam<int> {};

TEST_P(YamlFuzz, RandomDocumentsRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1237 + 5);
  for (int trial = 0; trial < 40; ++trial) {
    yamlite::Node doc = yamlite::Node::mapping();
    const auto n = rng.uniformInt(1, 5);
    for (std::uint64_t i = 0; i < n; ++i) {
      doc.set(strprintf("top%llu", (unsigned long long)i), randomNode(rng, 3));
    }
    const std::string text = yamlite::emit(doc);
    const auto parsed = yamlite::parse(text);
    ASSERT_TRUE(parsed.ok())
        << parsed.error().toString() << "\n--- document:\n" << text;
    EXPECT_TRUE(doc == parsed.value()) << "--- document:\n" << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YamlFuzz, ::testing::Range(1, 9));

// ------------------------------------------------ workload stress ----

class WorkloadStress : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadStress, EveryRequestAnsweredExactlyOnce) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  TestbedOptions options;
  options.seed = seed;
  options.clusterMode =
      (seed % 2 == 0) ? ClusterMode::kDockerOnly : ClusterMode::kBoth;
  options.controller.memoryIdleTimeout = SimTime::seconds(8.0);
  options.controller.switchIdleTimeout = SimTime::seconds(2.0);
  Testbed bed(options);

  Rng rng(seed * 31 + 7);
  // 2-4 services, mixed types (no resnet: keeps the horizon short).
  const std::vector<std::string> kinds{"asm", "nginx", "nginx-py"};
  const auto serviceCount = rng.uniformInt(2, 4);
  std::vector<Endpoint> addresses;
  for (std::uint64_t s = 0; s < serviceCount; ++s) {
    const Endpoint address(
        Ipv4(203, 0, 113, static_cast<std::uint8_t>(s + 1)), 80);
    const auto& kind = kinds[rng.uniformInt(0, kinds.size() - 1)];
    ASSERT_TRUE(bed.registerCatalogService(kind, address).ok());
    bed.warmImageCache(kind);
    addresses.push_back(address);
  }

  // 60 requests over 60 s from random clients to random services,
  // including bursts at identical timestamps.
  int answered = 0;
  int issued = 0;
  for (int i = 0; i < 60; ++i) {
    const double at = rng.uniform(0.0, 60.0);
    const auto client = rng.uniformInt(0, bed.clientCount() - 1);
    const auto& address = addresses[rng.uniformInt(0, addresses.size() - 1)];
    ++issued;
    bed.sim().scheduleAt(SimTime::seconds(at), [&bed, client, address,
                                                &answered] {
      HttpRequest req;
      bed.client(client).httpRequest(address, req,
                                     [&answered](Result<HttpExchange> r) {
                                       ASSERT_TRUE(r.ok())
                                           << r.error().toString();
                                       ++answered;
                                     });
    });
  }
  bed.sim().runUntil(SimTime::seconds(180.0));
  EXPECT_EQ(answered, issued);
  EXPECT_EQ(bed.controller().requestsFailed(), 0u);
  // Nothing left half-finished inside the dispatcher.
  EXPECT_EQ(bed.controller().dispatcher().pendingDeployments(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadStress, ::testing::Range(1, 9));

// ---------------------------------------------------- determinism ----

TEST(DeterminismProperty, IdenticalAcrossRunsForManySeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto run = [seed] {
      TestbedOptions options;
      options.seed = seed;
      options.clusterMode = ClusterMode::kBoth;
      Testbed bed(options);
      EXPECT_TRUE(
          bed.registerCatalogService("nginx", Endpoint(Ipv4(203, 0, 113, 1), 80))
              .ok());
      bed.warmImageCache("nginx");
      std::vector<double> totals;
      for (std::size_t c = 0; c < 5; ++c) {
        bed.requestCatalog(c, "nginx", Endpoint(Ipv4(203, 0, 113, 1), 80),
                           "t", [&totals](Result<HttpExchange> r) {
                             ASSERT_TRUE(r.ok());
                             totals.push_back(
                                 r.value().timings.timeTotal().toSeconds());
                           });
      }
      bed.sim().runUntil(SimTime::seconds(60.0));
      return totals;
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

// --------------------------------------------- FlowMemory model check ----

TEST(FlowMemoryModel, MatchesReferenceMapUnderRandomOps) {
  using core::FlowMemory;
  Rng rng(424242);
  const SimTime timeout = SimTime::seconds(10.0);
  FlowMemory memory(timeout);

  struct RefFlow {
    Endpoint instance;
    std::string cluster;
    SimTime lastSeen;
  };
  std::map<std::pair<Ipv4, Endpoint>, RefFlow> reference;

  SimTime now;
  for (int step = 0; step < 2000; ++step) {
    now += SimTime::millis(static_cast<std::int64_t>(rng.uniformInt(1, 2000)));
    const Ipv4 client(10, 0, 2, static_cast<std::uint8_t>(rng.uniformInt(1, 5)));
    const Endpoint service(
        Ipv4(203, 0, 113, static_cast<std::uint8_t>(rng.uniformInt(1, 3))), 80);
    const Endpoint instance(
        Ipv4(10, 0, 1, 1),
        static_cast<std::uint16_t>(30000 + rng.uniformInt(0, 3)));
    const std::string cluster = rng.chance(0.5) ? "near" : "far";

    switch (rng.uniformInt(0, 3)) {
      case 0:
        memory.upsert(client.value ? client : client, service, instance,
                      cluster, now);
        reference[{client, service}] = RefFlow{instance, cluster, now};
        break;
      case 1: {
        memory.touch(client, service, now);
        const auto it = reference.find({client, service});
        if (it != reference.end()) {
          it->second.lastSeen = std::max(it->second.lastSeen, now);
        }
        break;
      }
      case 2: {
        const auto expired = memory.expire(now);
        std::size_t refExpired = 0;
        for (auto it = reference.begin(); it != reference.end();) {
          if (now - it->second.lastSeen >= timeout) {
            it = reference.erase(it);
            ++refExpired;
          } else {
            ++it;
          }
        }
        EXPECT_EQ(expired.size(), refExpired);
        break;
      }
      default: {
        const auto flow = memory.lookup(client, service);
        const auto it = reference.find({client, service});
        if (it == reference.end()) {
          EXPECT_FALSE(flow.has_value());
        } else {
          ASSERT_TRUE(flow.has_value());
          EXPECT_EQ(flow->instance, it->second.instance);
          EXPECT_EQ(flow->cluster, it->second.cluster);
          EXPECT_EQ(flow->lastSeen, it->second.lastSeen);
        }
        break;
      }
    }
    EXPECT_EQ(memory.size(), reference.size());
  }
}

// ------------------------------------------------- fault invariant ----
//
// Inject a randomly generated (but seed-deterministic) fault plan into the
// full testbed, then drive resolves from many clients.  Whatever the plan
// does, every resolve must terminate -- with an edge instance or the cloud
// endpoint -- within deployTimeout * (retries + 1), and the dispatcher must
// not keep a dangling pending-deployment entry.

class FaultInvariant : public ::testing::TestWithParam<int> {};

TEST_P(FaultInvariant, EveryResolveTerminatesInBoundedTime) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  TestbedOptions options;
  options.seed = seed;
  options.clusterMode =
      (seed % 2 == 0) ? ClusterMode::kDockerOnly : ClusterMode::kBoth;
  options.farEdge = (seed % 3 == 0);
  options.controller.deployRetries = 2;
  options.controller.retryBackoff = SimTime::millis(100);
  options.controller.phaseTimeout = SimTime::seconds(20.0);
  options.controller.deployTimeout = SimTime::seconds(40.0);
  Testbed bed(options);

  fault::FaultPlan plan(seed * 977 + 3);
  Rng rng(seed * 131 + 17);
  const std::vector<std::string> rpcTargets{
      "docker-egs", "k8s-egs", "docker-far", "docker-egs/pull",
      "k8s-egs/scaleup"};
  const std::vector<fault::FaultSite> sites{
      fault::FaultSite::kRegistryPull, fault::FaultSite::kContainerCreate,
      fault::FaultSite::kContainerStart, fault::FaultSite::kClusterRpc};
  const auto specCount = rng.uniformInt(2, 6);
  for (std::uint64_t i = 0; i < specCount; ++i) {
    fault::FaultSpec spec;
    spec.site = sites[rng.uniformInt(0, sites.size() - 1)];
    if (spec.site == fault::FaultSite::kClusterRpc) {
      spec.target = rpcTargets[rng.uniformInt(0, rpcTargets.size() - 1)];
    } else if (rng.chance(0.5)) {
      spec.target = rng.chance(0.5) ? "egs" : "far-edge";
    }
    spec.probability = rng.uniform(0.2, 1.0);
    spec.maxTriggers =
        rng.chance(0.3) ? static_cast<int>(rng.uniformInt(1, 3)) : -1;
    spec.skipFirst = static_cast<int>(rng.uniformInt(0, 2));
    spec.stall =
        SimTime::millis(static_cast<std::int64_t>(rng.uniformInt(0, 500)));
    plan.add(spec);
  }
  bed.injectFaults(plan);

  const Endpoint addr(Ipv4(203, 0, 113, 1), 80);
  ASSERT_TRUE(bed.registerCatalogService("nginx", addr).ok());
  const core::ServiceModel* model = bed.controller().serviceAt(addr);
  ASSERT_NE(model, nullptr);

  // Hard per-resolve bound: deployTimeout * (retries + 1) plus slack for
  // the zero-latency completion hops.
  const double boundSeconds = 40.0 * 3 + 1.0;
  constexpr int kRequests = 12;
  struct Outcome {
    bool done = false;
    bool ok = false;
    SimTime issuedAt;
    SimTime doneAt;
  };
  std::vector<Outcome> outcomes(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    bed.sim().scheduleAt(SimTime::seconds(i * 2.0), [&bed, model, i,
                                                     &outcomes] {
      outcomes[i].issuedAt = bed.sim().now();
      bed.controller().dispatcher().resolve(
          *model, Ipv4(10, 0, 2, static_cast<std::uint8_t>(i + 1)),
          [&bed, i, &outcomes](Result<core::Redirect> r) {
            outcomes[i].done = true;
            outcomes[i].ok = r.ok();
            outcomes[i].doneAt = bed.sim().now();
            if (r.ok()) {
              EXPECT_NE(r.value().instance.port, 0);
            }
          });
    });
  }
  bed.sim().runUntil(SimTime::seconds(2.0 * kRequests + boundSeconds + 30.0));

  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(outcomes[i].done) << "resolve " << i << " hung (seed " << seed
                                  << ", " << plan.triggerCount()
                                  << " faults triggered)";
    // The testbed always has a cloud instance, so degradation must turn
    // every failure into a redirect.
    EXPECT_TRUE(outcomes[i].ok) << "resolve " << i << " failed";
    EXPECT_LE((outcomes[i].doneAt - outcomes[i].issuedAt).toSeconds(),
              boundSeconds)
        << "resolve " << i << " exceeded the retry-extended deadline";
  }
  EXPECT_EQ(bed.controller().dispatcher().pendingDeployments(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultInvariant, ::testing::Range(1, 7));

// ---------------------------------------------- overload accounting ----
//
// Randomize the governor's knobs (queue capacity, shed policy, budget,
// deploy cap, brownout threshold) and fire an open-loop burst of requests
// from real driver threads while the sim thread pumps.  Whatever mix of
// warm hits, cold deployments, queue-full sheds, budget expiries, brownout
// redirects and degraded fallbacks results, every request must be answered
// exactly once and the controller's books must balance.

class OverloadAccounting : public ::testing::TestWithParam<int> {};

TEST_P(OverloadAccounting, SubmittedEqualsResolvedPlusShedPlusFailed) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 811 + 29);

  TestbedOptions options;
  options.seed = seed;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.flowShards = 4;
  options.controller.workers = 2;
  auto& overload = options.controller.overload;
  overload.enabled = true;
  overload.laneQueueCapacity = rng.uniformInt(1, 4);
  overload.shedPolicy = rng.chance(0.5) ? "deadline-aware" : "reject-newest";
  switch (rng.uniformInt(0, 2)) {
    case 0: overload.requestBudget = SimTime::zero(); break;
    case 1: overload.requestBudget = SimTime::millis(100); break;
    default: overload.requestBudget = SimTime::seconds(1.0); break;
  }
  overload.maxDeploysPerCluster = static_cast<int>(rng.uniformInt(0, 2));
  overload.brownoutShedThreshold = rng.chance(0.5) ? 0 : 8;
  overload.brownoutWindow = SimTime::seconds(5.0);
  Testbed bed(options);
  if (rng.chance(0.7)) bed.warmImageCache("nginx");
  const Endpoint addr(Ipv4(203, 0, 113, 10), 80);
  ASSERT_TRUE(bed.registerCatalogService("nginx", addr).ok());

  core::EdgeController& controller = bed.controller();
  constexpr int kDrivers = 2;
  constexpr int kPerDriver = 40;
  constexpr int kTotal = kDrivers * kPerDriver;
  std::vector<std::atomic<int>> callbackCount(kTotal);
  std::atomic<int> completed{0};

  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      for (int i = 0; i < kPerDriver; ++i) {
        const int index = d * kPerDriver + i;
        // Few distinct clients: later requests hit the memorized flow.
        controller.submitRequest(
            Ipv4(10, 0, 2, static_cast<std::uint8_t>(1 + index % 6)), addr,
            [&, index](Result<core::Redirect>) {
              callbackCount[index].fetch_add(1);
              completed.fetch_add(1);
            });
      }
    });
  }

  Simulation& sim = bed.sim();
  int guard = 0;
  while (completed.load(std::memory_order_acquire) < kTotal) {
    sim.waitForExternal(std::chrono::microseconds(200));
    sim.pump(10_ms);
    ASSERT_LT(++guard, 50000)
        << "requests stalled; " << completed.load() << "/" << kTotal
        << " shed=" << controller.requestsShed()
        << " resolved=" << controller.requestsResolved()
        << " failed=" << controller.requestsFailed();
  }
  for (auto& thread : drivers) thread.join();
  controller.workerPool()->drain();
  sim.pump(10_ms);

  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(callbackCount[i].load(), 1) << "request " << i;
  }
  EXPECT_EQ(controller.requestsSubmitted(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(controller.requestsSubmitted(),
            controller.requestsResolved() + controller.requestsShed() +
                controller.requestsFailed());
  // The controller's shed bucket is exactly the governor's queue-full plus
  // budget-expired counts (deploy-cap refusals degrade, they don't shed).
  ASSERT_NE(bed.governor(), nullptr);
  EXPECT_EQ(controller.requestsShed(),
            bed.governor()->shedCount(overload::ShedReason::kQueueFull) +
                bed.governor()->shedCount(overload::ShedReason::kBudgetExpired));
  // Shed answers complete before their background deployments settle; the
  // deployments must still drain rather than dangle.
  guard = 0;
  while (controller.dispatcher().pendingDeployments() > 0) {
    sim.pump(1_s);
    ASSERT_LT(++guard, 10000) << "dangling pending deployment";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadAccounting, ::testing::Range(1, 7));

// ----------------------------------------------- handover continuity ----
//
// Randomized mobility traces crossed with randomized fault plans: clients
// wander between the EGS cell and the far-edge cell while the handover
// manager re-steers their flows, and the far-edge deploy path is salted
// with seeded faults (so handovers abort to the cloud mid-flight).
// Invariants, whatever the trace and plan:
//   * every issued request is answered exactly once, successfully -- a
//     handover never strands a flow;
//   * the handover books balance exactly:
//     handoversStarted == handoversCompleted + handoversAbortedToCloud;
//   * nothing dangles (no pending deployments, no in-flight handovers).

class HandoverContinuity : public ::testing::TestWithParam<int> {};

TEST_P(HandoverContinuity, NoRequestLostUnderMobilityAndFaults) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  TestbedOptions options;
  options.seed = seed;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.farEdge = true;
  options.controller.deployRetries = 1;
  options.controller.retryBackoff = SimTime::millis(100);
  // Odd seeds run with the governor on: handovers into a browned-out or
  // breaker-open cluster must degrade, never strand.
  options.controller.overload.enabled = (seed % 2 == 1);
  Testbed bed(options);

  Rng rng(seed * 613 + 11);

  // Seeded fault plan over the deploy paths a handover exercises.
  fault::FaultPlan plan(seed * 977 + 41);
  const std::vector<std::string> rpcTargets{
      "docker-far", "docker-far/pull", "docker-far/create",
      "docker-egs/scaleup"};
  const auto specCount = rng.uniformInt(1, 4);
  for (std::uint64_t i = 0; i < specCount; ++i) {
    fault::FaultSpec spec;
    if (rng.chance(0.3)) {
      spec.site = fault::FaultSite::kRegistryPull;
      spec.target = "far-edge";
    } else {
      spec.site = fault::FaultSite::kClusterRpc;
      spec.target = rpcTargets[rng.uniformInt(0, rpcTargets.size() - 1)];
    }
    spec.probability = rng.uniform(0.2, 1.0);
    spec.maxTriggers =
        rng.chance(0.4) ? static_cast<int>(rng.uniformInt(1, 3)) : -1;
    spec.skipFirst = static_cast<int>(rng.uniformInt(0, 2));
    spec.stall =
        SimTime::millis(static_cast<std::int64_t>(rng.uniformInt(0, 300)));
    plan.add(spec);
  }
  bed.injectFaults(plan);

  const Endpoint addr(Ipv4(203, 0, 113, 10), 80);
  bed.warmImageCache("nginx");
  ASSERT_TRUE(bed.registerCatalogService("nginx", addr).ok());

  // Random mobility traces: each client wanders between the two cells,
  // crossing the midpoint an arbitrary number of times within 40 s.
  mobility::MobilityModel model(
      {{"bs-egs", {0.0, 0.0}, "docker-egs"},
       {"bs-far", {1000.0, 0.0}, "docker-far"}});
  const std::size_t clientCount = 3 + seed % 3;
  for (std::size_t c = 0; c < clientCount; ++c) {
    workload::MobilityPath path;
    path.waypoints.push_back(
        {SimTime::zero(), {rng.uniform(0.0, 400.0), rng.uniform(-100.0, 100.0)}});
    const auto hops = rng.uniformInt(1, 4);
    double at = 0.0;
    for (std::uint64_t h = 0; h < hops; ++h) {
      at += rng.uniform(4.0, 12.0);
      path.waypoints.push_back({SimTime::seconds(at),
                                {rng.uniform(0.0, 1000.0),
                                 rng.uniform(-100.0, 100.0)}});
    }
    model.setPath(Ipv4(10, 0, 2, static_cast<std::uint8_t>(c + 1)),
                  std::move(path));
  }
  mobility::AttachmentManager attachments(bed.sim(), model,
                                          {.scanPeriod = SimTime::millis(250)});
  mobility::HandoverManager handovers(bed.controller(), attachments);
  handovers.start();

  // Scattered requests from every client across the mobile phase: some hit
  // mid-handover, some land right after a re-steer.
  int issued = 0;
  int answered = 0;
  for (std::size_t c = 0; c < clientCount; ++c) {
    const auto requestCount = rng.uniformInt(3, 6);
    for (std::uint64_t r = 0; r < requestCount; ++r) {
      const double at = rng.uniform(0.5, 40.0);
      ++issued;
      bed.sim().scheduleAt(SimTime::seconds(at), [&bed, &answered, addr, c] {
        bed.requestCatalog(c, "nginx", addr, "mobile",
                           [&answered](Result<HttpExchange> result) {
                             ASSERT_TRUE(result.ok())
                                 << result.error().toString();
                             ++answered;
                           });
      });
    }
  }

  // Generous horizon: movement ends at ~40 s, a worst-case handover deploy
  // is bounded by deployTimeout * (retries + 1).
  bed.sim().runUntil(SimTime::seconds(200.0));

  EXPECT_EQ(answered, issued) << "a request was lost (seed " << seed << ", "
                              << plan.triggerCount() << " faults triggered)";
  const core::EdgeController& controller = bed.controller();
  EXPECT_EQ(controller.requestsFailed(), 0u);
  EXPECT_EQ(controller.handoversStarted(),
            controller.handoversCompleted() +
                controller.handoversAbortedToCloud())
      << "handover accounting out of balance (seed " << seed << ")";
  EXPECT_EQ(bed.controller().dispatcher().pendingDeployments(), 0u);
  // Every memorized flow that survived points at a live binding.
  for (std::size_t c = 0; c < clientCount; ++c) {
    const auto flow = bed.controller().flowMemory().lookup(
        Ipv4(10, 0, 2, static_cast<std::uint8_t>(c + 1)), addr);
    if (!flow.has_value()) continue;  // idled out, fine
    EXPECT_FALSE(flow->cluster.empty());
    EXPECT_NE(flow->instance.port, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HandoverContinuity, ::testing::Range(1, 9));

// ------------------------------------------ rule-state convergence ----
//
// Randomized control-channel fault schedules (per-message loss in either
// direction, an outage window, an optional switch restart) crossed with
// randomized warm workloads.  The fault era is finite by construction
// (finite trigger budgets, bounded windows); after it ends the anti-entropy
// sweeper must converge the switch table back to exactly the redirect
// entries FlowMemory implies -- within two sweep periods, after which no
// further drift is ever detected -- and the acked-install books must
// balance: flowModsSent == flowModsAcked + flowModsTimedOut with nothing
// left pending.

class RuleStateConvergence : public ::testing::TestWithParam<int> {};

TEST_P(RuleStateConvergence, TablesConvergeToIntendedStateAfterFaults) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  TestbedOptions options;
  options.seed = seed;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.reconcilePeriod = 1_s;
  // Idle timeouts far beyond the horizon: every divergence observed below
  // is fault-injected, never organic expiry.
  options.controller.switchIdleTimeout = SimTime::seconds(600.0);
  options.controller.memoryIdleTimeout = SimTime::seconds(600.0);
  Testbed bed(options);

  Rng rng(seed * 409 + 13);
  fault::FaultPlan plan(seed * 977 + 7);
  // Message loss, either direction, finite budget (the sweeps' own stats
  // round trips keep drawing, so the budget always drains).
  const auto lossSpecs = rng.uniformInt(1, 2);
  for (std::uint64_t i = 0; i < lossSpecs; ++i) {
    fault::FaultSpec loss;
    loss.site = fault::FaultSite::kControlChannelLoss;
    loss.target = rng.chance(0.5) ? "ovs/c2s" : "ovs/s2c";
    loss.probability = rng.uniform(0.3, 0.9);
    loss.maxTriggers = static_cast<int>(rng.uniformInt(2, 6));
    loss.skipFirst = static_cast<int>(rng.uniformInt(0, 2));
    plan.add(loss);
  }
  // A bounded full-blackout window.
  double faultsClearAt = 0.0;
  if (rng.chance(0.7)) {
    fault::FaultSpec outage;
    outage.site = fault::FaultSite::kControlChannelOutage;
    outage.target = "ovs";
    outage.at = SimTime::seconds(rng.uniform(2.0, 8.0));
    outage.duration = SimTime::seconds(rng.uniform(0.3, 2.0));
    plan.add(outage);
    faultsClearAt = (outage.at + outage.duration).toSeconds();
  }
  // An optional restart that wipes the whole table mid-run.
  if (rng.chance(0.7)) {
    fault::FaultSpec restart;
    restart.site = fault::FaultSite::kSwitchRestart;
    restart.target = "ovs";
    restart.at = SimTime::seconds(rng.uniform(2.0, 10.0));
    restart.duration = SimTime::millis(
        rng.chance(0.5) ? 0 : static_cast<std::int64_t>(rng.uniformInt(50, 300)));
    plan.add(restart);
    faultsClearAt =
        std::max(faultsClearAt, (restart.at + restart.duration).toSeconds());
  }
  bed.injectFaults(plan);

  // Warm workload: requests land before, during and after the fault era.
  const std::vector<std::string> kinds{"asm", "nginx"};
  std::vector<Endpoint> addresses;
  const auto serviceCount = rng.uniformInt(1, 2);
  for (std::uint64_t s = 0; s < serviceCount; ++s) {
    const Endpoint address(
        Ipv4(203, 0, 113, static_cast<std::uint8_t>(s + 1)), 80);
    const auto& kind = kinds[rng.uniformInt(0, kinds.size() - 1)];
    ASSERT_TRUE(bed.registerCatalogService(kind, address).ok());
    bed.warmImageCache(kind);
    addresses.push_back(address);
  }
  int issued = 0;
  int answered = 0;
  const auto requestCount = rng.uniformInt(8, 16);
  for (std::uint64_t i = 0; i < requestCount; ++i) {
    const double at = rng.uniform(0.2, 12.0);
    const auto client = rng.uniformInt(0, 5);
    const auto& address = addresses[rng.uniformInt(0, addresses.size() - 1)];
    ++issued;
    bed.sim().scheduleAt(SimTime::seconds(at),
                         [&bed, &answered, client, address] {
      HttpRequest req;
      bed.client(client).httpRequest(address, req,
                                     [&answered](Result<HttpExchange> r) {
                                       ASSERT_TRUE(r.ok())
                                           << r.error().toString();
                                       ++answered;
                                     });
    });
  }

  // Loss budgets drain within a handful of post-clear sweeps (each sweep
  // draws on both channel directions); give them room, then mark the drift
  // level two sweep periods later.  Any drift detected beyond that point
  // would mean the sweeper failed to converge.
  const double quietAt = std::max(faultsClearAt, 12.0) + 30.0;
  bed.sim().runUntil(SimTime::seconds(quietAt + 2.5));
  auto* reconciler = bed.controller().reconciler();
  ASSERT_NE(reconciler, nullptr);
  const auto driftAfterTwoSweeps =
      reconciler->stats().driftMissing + reconciler->stats().driftOrphans;

  bed.sim().runUntil(SimTime::seconds(100.0));
  EXPECT_EQ(answered, issued) << "a request was blackholed (seed " << seed
                              << ", " << plan.triggerCount()
                              << " faults triggered)";
  EXPECT_EQ(reconciler->stats().driftMissing + reconciler->stats().driftOrphans,
            driftAfterTwoSweeps)
      << "drift detected after the post-fault convergence point (seed "
      << seed << ")";

  // The switch table carries exactly the redirect entries FlowMemory
  // implies -- no lost rules, no orphans.
  std::set<std::string> intended;
  for (const auto& flow : bed.controller().intendedFlows(bed.ovs())) {
    for (const auto& entry : flow.entries) {
      intended.insert(std::to_string(entry.priority) + "|" +
                      entry.match.toString() + "|" +
                      openflow::actionsToString(entry.actions));
    }
  }
  std::set<std::string> installed;
  for (const auto& entry : bed.ovs().table().entries()) {
    if (entry.priority < core::kRedirectPriority) continue;
    installed.insert(std::to_string(entry.priority) + "|" +
                     entry.match.toString() + "|" +
                     openflow::actionsToString(entry.actions));
  }
  EXPECT_EQ(installed, intended) << "seed " << seed;

  // Install accounting balances at quiescence.
  const auto& ctrl = bed.controller();
  EXPECT_EQ(ctrl.flowModsSent(), ctrl.flowModsAcked() + ctrl.flowModsTimedOut())
      << "seed " << seed;
  EXPECT_EQ(bed.controller().pendingInstallCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleStateConvergence, ::testing::Range(1, 9));

}  // namespace
}  // namespace edgesim
