// Tests for the yamlite YAML-subset parser/emitter, exercised with real
// Kubernetes Deployment/Service definition shapes (the paper's service
// definition file format, §V).
#include <gtest/gtest.h>

#include "yamlite/node.hpp"
#include "yamlite/parse.hpp"

namespace edgesim::yamlite {
namespace {

TEST(Node, ScalarAccessors) {
  const auto n = Node::scalar("42");
  EXPECT_TRUE(n.isScalar());
  EXPECT_EQ(n.asString(), "42");
  EXPECT_EQ(n.asInt().value(), 42);
  EXPECT_DOUBLE_EQ(n.asDouble().value(), 42.0);
  EXPECT_FALSE(n.asBool().has_value());
  EXPECT_TRUE(Node::scalar("true").asBool().value());
  EXPECT_FALSE(Node::scalar("off").asBool().value());
  EXPECT_EQ(Node::scalar(7).asInt().value(), 7);
  EXPECT_EQ(Node::scalar(false).asString(), "false");
}

TEST(Node, MappingInsertLookupErase) {
  Node map = Node::mapping();
  map["a"] = Node::scalar("1");
  map.set("b", Node::scalar("2"));
  EXPECT_TRUE(map.contains("a"));
  EXPECT_EQ(map.find("b")->asString(), "2");
  EXPECT_EQ(map.find("zzz"), nullptr);
  EXPECT_TRUE(map.erase("a"));
  EXPECT_FALSE(map.erase("a"));
  EXPECT_EQ(map.size(), 1u);
}

TEST(Node, MappingPreservesInsertionOrder) {
  Node map = Node::mapping();
  map["z"] = Node::scalar("1");
  map["a"] = Node::scalar("2");
  map["m"] = Node::scalar("3");
  const auto& entries = map.entries();
  EXPECT_EQ(entries[0].first, "z");
  EXPECT_EQ(entries[1].first, "a");
  EXPECT_EQ(entries[2].first, "m");
}

TEST(Node, IndexingNullPromotesToMapping) {
  Node n;
  EXPECT_TRUE(n.isNull());
  n["spec"]["replicas"] = Node::scalar(0);
  EXPECT_TRUE(n.isMapping());
  EXPECT_EQ(n.findPath("spec.replicas")->asInt().value(), 0);
}

TEST(Node, PathHelpers) {
  Node n;
  n.makePath("spec.template.metadata.labels") = Node::mapping();
  EXPECT_NE(n.findPath("spec.template.metadata.labels"), nullptr);
  EXPECT_EQ(n.findPath("spec.missing.deeper"), nullptr);
  n.makePath("spec.replicas") = Node::scalar(3);
  EXPECT_EQ(n.findPath("spec.replicas")->asInt().value(), 3);
}

TEST(Node, PushPromotesNullToSequence) {
  Node n;
  n.push(Node::scalar("x"));
  EXPECT_TRUE(n.isSequence());
  EXPECT_EQ(n.size(), 1u);
}

TEST(Parse, SimpleMapping) {
  const auto result = parse("name: nginx\nreplicas: 3\n");
  ASSERT_TRUE(result.ok());
  const auto& doc = result.value();
  EXPECT_EQ(doc.find("name")->asString(), "nginx");
  EXPECT_EQ(doc.find("replicas")->asInt().value(), 3);
}

TEST(Parse, NestedMapping) {
  const auto result = parse(R"(metadata:
  name: web
  labels:
    app: web
    tier: edge
)");
  ASSERT_TRUE(result.ok());
  const auto& doc = result.value();
  EXPECT_EQ(doc.findPath("metadata.labels.tier")->asString(), "edge");
}

TEST(Parse, SequenceOfScalars) {
  const auto result = parse("args:\n  - -v\n  - --port=80\n");
  ASSERT_TRUE(result.ok());
  const auto& args = *result.value().find("args");
  ASSERT_TRUE(args.isSequence());
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args.items()[0].asString(), "-v");
  EXPECT_EQ(args.items()[1].asString(), "--port=80");
}

TEST(Parse, K8sStyleSequenceAtKeyIndent) {
  // Kubernetes YAML conventionally puts the dash at the key's indent level.
  const auto result = parse(R"(spec:
  containers:
  - name: nginx
    image: nginx:1.23.2
  - name: sidecar
    image: envwriter:latest
)");
  ASSERT_TRUE(result.ok());
  const auto* containers = result.value().findPath("spec.containers");
  ASSERT_NE(containers, nullptr);
  ASSERT_TRUE(containers->isSequence());
  ASSERT_EQ(containers->size(), 2u);
  EXPECT_EQ(containers->items()[0].find("image")->asString(), "nginx:1.23.2");
  EXPECT_EQ(containers->items()[1].find("name")->asString(), "sidecar");
}

TEST(Parse, FullDeploymentDefinition) {
  const auto result = parse(R"(apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx-deployment
spec:
  replicas: 1
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      containers:
      - name: nginx
        image: nginx:1.23.2
        ports:
        - containerPort: 80
        volumeMounts:
        - name: shared
          mountPath: /usr/share/nginx/html
      volumes:
      - name: shared
        hostPath:
          path: /data/www
)");
  ASSERT_TRUE(result.ok());
  const auto& doc = result.value();
  EXPECT_EQ(doc.find("kind")->asString(), "Deployment");
  const auto* port = doc.findPath("spec.template.spec.containers");
  ASSERT_NE(port, nullptr);
  const auto& container = port->items()[0];
  EXPECT_EQ(container.find("ports")->items()[0].find("containerPort")->asInt().value(), 80);
  EXPECT_EQ(
      container.find("volumeMounts")->items()[0].find("mountPath")->asString(),
      "/usr/share/nginx/html");
  EXPECT_EQ(doc.findPath("spec.template.spec.volumes")->items()[0]
                .findPath("hostPath.path")->asString(),
            "/data/www");
}

TEST(Parse, CommentsAndBlankLines) {
  const auto result = parse(R"(
# deployment for the edge
name: web  # service name
image: nginx   # image ref

port: 80
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().find("name")->asString(), "web");
  EXPECT_EQ(result.value().find("port")->asInt().value(), 80);
}

TEST(Parse, QuotedScalars) {
  const auto result = parse(R"(single: 'it''s quoted'
double: "line\nbreak: ok"
hash: "value # not a comment"
)");
  ASSERT_TRUE(result.ok());
  const auto& doc = result.value();
  EXPECT_EQ(doc.find("single")->asString(), "it's quoted");
  EXPECT_EQ(doc.find("double")->asString(), "line\nbreak: ok");
  EXPECT_EQ(doc.find("hash")->asString(), "value # not a comment");
}

TEST(Parse, NullValues) {
  const auto result = parse("a: null\nb: ~\nc:\nd: 1\n");
  ASSERT_TRUE(result.ok());
  const auto& doc = result.value();
  EXPECT_TRUE(doc.find("a")->isNull());
  EXPECT_TRUE(doc.find("b")->isNull());
  EXPECT_TRUE(doc.find("c")->isNull());
  EXPECT_EQ(doc.find("d")->asInt().value(), 1);
}

TEST(Parse, EmptyDocumentIsNull) {
  const auto result = parse("\n# only comments\n\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().isNull());
}

TEST(Parse, BareScalarDocument) {
  const auto result = parse("just-a-string\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().asString(), "just-a-string");
}

TEST(Parse, RejectsUnsupportedSyntax) {
  EXPECT_FALSE(parse("a:\tvalue\n").ok());          // tab
  EXPECT_FALSE(parse("---\na: 1\n").ok());          // multi-doc
  EXPECT_FALSE(parse("a: 1\na: 2\n").ok());         // duplicate key
  EXPECT_FALSE(parse("{a: 1}\n").ok());             // flow mapping
  EXPECT_FALSE(parse("key: 'unterminated\n").ok()); // bad quote
}

TEST(Parse, TopLevelSequence) {
  const auto result = parse("- a\n- b\n- c\n");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().isSequence());
  EXPECT_EQ(result.value().size(), 3u);
}

TEST(Parse, SequenceItemWithNestedBlock) {
  const auto result = parse(R"(-
  name: standalone
  port: 8080
- name: inline
)");
  ASSERT_TRUE(result.ok());
  const auto& seq = result.value();
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq.items()[0].find("port")->asInt().value(), 8080);
  EXPECT_EQ(seq.items()[1].find("name")->asString(), "inline");
}

TEST(Emit, ScalarQuotingRules) {
  Node map = Node::mapping();
  map["plain"] = Node::scalar("simple");
  map["colon"] = Node::scalar("a: b");
  map["empty"] = Node::scalar("");
  map["dash"] = Node::scalar("-starts");
  const auto text = emit(map);
  EXPECT_NE(text.find("plain: simple"), std::string::npos);
  EXPECT_NE(text.find("colon: \"a: b\""), std::string::npos);
  EXPECT_NE(text.find("empty: \"\""), std::string::npos);
  EXPECT_NE(text.find("dash: \"-starts\""), std::string::npos);
}

// Round-trip property over representative document shapes.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ParseEmitParseIsIdentity) {
  const auto first = parse(GetParam());
  ASSERT_TRUE(first.ok()) << first.error().toString();
  const auto text = emit(first.value());
  const auto second = parse(text);
  ASSERT_TRUE(second.ok()) << second.error().toString() << "\n--- emitted:\n"
                           << text;
  EXPECT_TRUE(first.value() == second.value()) << "--- emitted:\n" << text;
}

INSTANTIATE_TEST_SUITE_P(
    Docs, RoundTrip,
    ::testing::Values(
        "a: 1\n",
        "a:\n  b:\n    c: deep\n",
        "list:\n- 1\n- 2\n- 3\n",
        "containers:\n- name: a\n  image: x:1\n- name: b\n  image: y:2\n",
        "metadata:\n  labels:\n    edge.service: \"my.svc:80\"\n",
        "spec:\n  ports:\n  - port: 80\n    targetPort: 8080\n    protocol: TCP\n",
        "mixed:\n- scalar\n- key: value\n- deeper:\n    x: 1\n",
        "quoted: \"with \\\"escapes\\\" and\\nnewline\"\n",
        "nested:\n- - 1\n  - 2\n",
        "apiVersion: v1\nkind: Service\nmetadata:\n  name: svc\nspec:\n"
        "  selector:\n    app: web\n  ports:\n  - port: 80\n"));

TEST(Emit, K8sDeploymentShape) {
  Node doc = Node::mapping();
  doc["apiVersion"] = Node::scalar("apps/v1");
  doc["kind"] = Node::scalar("Deployment");
  doc.makePath("metadata.name") = Node::scalar("web");
  doc.makePath("spec.replicas") = Node::scalar(0);
  Node container = Node::mapping();
  container["name"] = Node::scalar("web");
  container["image"] = Node::scalar("nginx:1.23.2");
  doc.makePath("spec.template.spec.containers").push(std::move(container));
  const auto text = emit(doc);
  EXPECT_NE(text.find("kind: Deployment"), std::string::npos);
  EXPECT_NE(text.find("replicas: 0"), std::string::npos);
  EXPECT_NE(text.find("- name: web"), std::string::npos);
  // Emitted document must parse back identically.
  const auto reparsed = parse(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(doc == reparsed.value());
}

}  // namespace
}  // namespace edgesim::yamlite
