// Unit tests for the Dispatcher (fig. 7) against a scripted mock cluster
// adapter: phase ordering (Pull -> Create -> Scale-Up -> wait), request
// coalescing, FlowMemory fast path, BEST background deployments, cloud
// fallback, and deployment timeout.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/service_catalog.hpp"

namespace edgesim::core {
namespace {

using namespace timeliterals;

const Endpoint kSvc{Ipv4(203, 0, 113, 10), 80};

/// Scripted adapter: phase latencies and state are fully controllable.
class MockAdapter final : public ClusterAdapter {
 public:
  MockAdapter(Simulation& sim, std::string name, int rank)
      : ClusterAdapter(std::move(name), rank), sim_(sim) {}

  // --- scripted state ---
  bool imageCached = false;
  bool created = false;
  bool running = false;        // becomes true readyDelay after scale-up
  bool cloud = false;
  SimTime pullDelay = 2_s;
  SimTime createDelay = 100_ms;
  SimTime scaleUpDelay = 300_ms;
  SimTime readyDelay = 100_ms;  // scale-up completion -> port open
  bool failPull = false;
  bool neverReady = false;
  Endpoint instance{Ipv4(10, 0, 1, 1), 30000};

  // --- call log ---
  std::vector<std::string> log;

  bool isCloud() const override { return cloud; }

  ClusterView view(const ServiceModel&) const override {
    ClusterView v;
    v.name = name();
    v.distanceRank = distanceRank();
    v.isCloud = cloud;
    v.imageCached = imageCached;
    v.serviceCreated = created;
    if (running) v.readyInstances.push_back(instance);
    v.freeCapacity = 10;
    return v;
  }

  std::vector<Endpoint> readyInstances(const ServiceModel&) const override {
    if (running) return {instance};
    return {};
  }

  void pullImages(const ServiceModel&, Callback cb) override {
    log.push_back("pull");
    sim_.schedule(pullDelay, [this, cb] {
      if (failPull) {
        cb(makeError(Errc::kUnavailable, "registry down"));
        return;
      }
      imageCached = true;
      cb(Status());
    });
  }

  void createService(const ServiceModel&, Callback cb) override {
    log.push_back("create");
    sim_.schedule(createDelay, [this, cb] {
      created = true;
      cb(Status());
    });
  }

  void scaleUp(const ServiceModel&, Callback cb) override {
    log.push_back("scaleup");
    sim_.schedule(scaleUpDelay, [this, cb] {
      if (!neverReady) {
        sim_.schedule(readyDelay, [this] { running = true; });
      }
      cb(Status());
    });
  }

  void scaleDown(const ServiceModel&, Callback cb) override {
    log.push_back("scaledown");
    running = false;
    sim_.schedule(10_ms, [cb] { cb(Status()); });
  }

  void removeService(const ServiceModel&, Callback cb) override {
    log.push_back("remove");
    created = false;
    running = false;
    sim_.schedule(10_ms, [cb] { cb(Status()); });
  }

  void deleteImages(const ServiceModel&, Callback cb) override {
    log.push_back("delete-images");
    imageCached = false;
    sim_.schedule(10_ms, [cb] { cb(Status()); });
  }

  void probeInstance(Endpoint probed, ProbeCallback cb) override {
    sim_.schedule(1_ms, [this, probed, cb] {
      cb(running && probed == instance);
    });
  }

 private:
  Simulation& sim_;
};

class DispatcherFixture : public ::testing::Test {
 protected:
  DispatcherFixture()
      : sim_(81),
        memory_(60_s),
        near_(sim_, "near", 0),
        far_(sim_, "far", 1),
        cloud_(sim_, "cloud", 100) {
    cloud_.cloud = true;
    cloud_.imageCached = true;
    cloud_.created = true;
    cloud_.running = true;
    cloud_.instance = Endpoint(Ipv4(198, 51, 100, 1), 20000);

    ServiceCatalog catalog;
    const auto annotated = annotateServiceYaml(catalog.entry("nginx").yaml,
                                               kSvc, AnnotatorConfig{});
    auto model = buildServiceModel(annotated.value(), kSvc, catalog.profiles());
    model_ = std::move(model).value();
    model_.tag = "nginx";
  }

  void makeDispatcher(std::unique_ptr<GlobalScheduler> scheduler) {
    scheduler_ = std::move(scheduler);
    dispatcher_ = std::make_unique<Dispatcher>(
        sim_, memory_, *scheduler_,
        std::vector<ClusterAdapter*>{&near_, &far_, &cloud_}, &recorder_);
  }

  Simulation sim_;
  FlowMemory memory_;
  MockAdapter near_;
  MockAdapter far_;
  MockAdapter cloud_;
  metrics::Recorder recorder_;
  ServiceModel model_;
  std::unique_ptr<GlobalScheduler> scheduler_;
  std::unique_ptr<Dispatcher> dispatcher_;
};

TEST_F(DispatcherFixture, AllPhasesRunInOrderWhenCold) {
  makeDispatcher(makeProximityScheduler());
  std::optional<Result<Redirect>> got;
  dispatcher_->resolve(model_, Ipv4(10, 0, 2, 1),
                       [&](Result<Redirect> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  EXPECT_EQ(got->value().cluster, "near");
  EXPECT_EQ(got->value().instance, near_.instance);
  EXPECT_FALSE(got->value().fromMemory);
  ASSERT_EQ(near_.log.size(), 3u);
  EXPECT_EQ(near_.log[0], "pull");
  EXPECT_EQ(near_.log[1], "create");
  EXPECT_EQ(near_.log[2], "scaleup");
  // Total ~ pull 2 s + create 0.1 + scaleup 0.3 + ready 0.1 + poll rounding.
  EXPECT_GE(sim_.now(), 2500_ms);
  EXPECT_LT(sim_.now(), 2700_ms);
}

TEST_F(DispatcherFixture, SkipsCompletedPhases) {
  makeDispatcher(makeProximityScheduler());
  near_.imageCached = true;
  near_.created = true;
  std::optional<Result<Redirect>> got;
  dispatcher_->resolve(model_, Ipv4(10, 0, 2, 1),
                       [&](Result<Redirect> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value() && got->ok());
  ASSERT_EQ(near_.log.size(), 1u);
  EXPECT_EQ(near_.log[0], "scaleup");
  EXPECT_LT(sim_.now(), 600_ms);
}

TEST_F(DispatcherFixture, PhaseDurationsRecorded) {
  makeDispatcher(makeProximityScheduler());
  dispatcher_->resolve(model_, Ipv4(10, 0, 2, 1), [](Result<Redirect>) {});
  sim_.run();
  const auto* pull = recorder_.series("nginx/near/pull");
  const auto* create = recorder_.series("nginx/near/create");
  const auto* wait = recorder_.series("nginx/near/wait");
  ASSERT_NE(pull, nullptr);
  ASSERT_NE(create, nullptr);
  ASSERT_NE(wait, nullptr);
  EXPECT_NEAR(pull->median(), 2.0, 0.01);
  EXPECT_NEAR(create->median(), 0.1, 0.01);
  EXPECT_GT(wait->median(), 0.05);
}

TEST_F(DispatcherFixture, ConcurrentResolvesCoalesceIntoOneDeployment) {
  makeDispatcher(makeProximityScheduler());
  int completions = 0;
  for (int i = 0; i < 8; ++i) {
    dispatcher_->resolve(model_,
                         Ipv4(10, 0, 2, static_cast<std::uint8_t>(i + 1)),
                         [&](Result<Redirect> r) {
                           ASSERT_TRUE(r.ok());
                           ++completions;
                         });
  }
  sim_.run();
  EXPECT_EQ(completions, 8);
  EXPECT_EQ(dispatcher_->deploymentsTriggered(), 1u);
  // Phases ran exactly once.
  ASSERT_EQ(near_.log.size(), 3u);
}

TEST_F(DispatcherFixture, MemoryHitShortCircuitsScheduling) {
  makeDispatcher(makeProximityScheduler());
  near_.imageCached = true;
  near_.created = true;
  near_.running = true;
  memory_.upsert(Ipv4(10, 0, 2, 1), kSvc, near_.instance, "near",
                 SimTime::zero());

  std::optional<Result<Redirect>> got;
  dispatcher_->resolve(model_, Ipv4(10, 0, 2, 1),
                       [&](Result<Redirect> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_TRUE(got->value().fromMemory);
  EXPECT_TRUE(near_.log.empty());  // no deployment calls at all
}

TEST_F(DispatcherFixture, StaleMemoryEntryFallsBackToScheduling) {
  makeDispatcher(makeProximityScheduler());
  near_.imageCached = true;
  near_.created = true;
  near_.running = false;  // instance scaled down since memorised
  memory_.upsert(Ipv4(10, 0, 2, 1), kSvc, near_.instance, "near",
                 SimTime::zero());

  std::optional<Result<Redirect>> got;
  dispatcher_->resolve(model_, Ipv4(10, 0, 2, 1),
                       [&](Result<Redirect> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_FALSE(got->value().fromMemory);
  // The stale entry was dropped and a fresh scale-up ran.
  EXPECT_EQ(near_.log.back(), "scaleup");
}

TEST_F(DispatcherFixture, WithoutWaitingTriggersBackgroundBest) {
  makeDispatcher(makeLatencyFirstScheduler());
  far_.imageCached = true;
  far_.created = true;
  far_.running = true;
  far_.instance = Endpoint(Ipv4(10, 0, 3, 1), 30000);
  near_.imageCached = true;
  near_.created = true;

  std::optional<Result<Redirect>> got;
  dispatcher_->resolve(model_, Ipv4(10, 0, 2, 1),
                       [&](Result<Redirect> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value() && got->ok());
  // Current request served by the far running instance...
  EXPECT_EQ(got->value().cluster, "far");
  // ...while the near cluster deployed in the background.
  EXPECT_EQ(dispatcher_->backgroundDeployments(), 1u);
  EXPECT_TRUE(near_.running);
}

TEST_F(DispatcherFixture, CloudFallbackWhenFastEmpty) {
  makeDispatcher(makeCloudFallbackScheduler());
  // Nothing runs at any edge; cloud-fallback sends the request to the
  // cloud and deploys near in the background.
  near_.imageCached = true;
  near_.created = true;
  std::optional<Result<Redirect>> got;
  dispatcher_->resolve(model_, Ipv4(10, 0, 2, 1),
                       [&](Result<Redirect> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_EQ(got->value().cluster, "cloud");
  EXPECT_EQ(got->value().instance, cloud_.instance);
  EXPECT_TRUE(near_.running);  // background deployment happened
}

TEST_F(DispatcherFixture, PullFailurePropagates) {
  // With cloud fallback disabled the pull failure must reach the caller
  // once the retry budget is spent.
  DispatcherOptions options;
  options.cloudFallback = false;
  scheduler_ = makeProximityScheduler();
  dispatcher_ = std::make_unique<Dispatcher>(
      sim_, memory_, *scheduler_,
      std::vector<ClusterAdapter*>{&near_, &far_, &cloud_}, &recorder_,
      options);
  near_.failPull = true;
  far_.failPull = true;
  std::optional<Result<Redirect>> got;
  dispatcher_->resolve(model_, Ipv4(10, 0, 2, 1),
                       [&](Result<Redirect> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value());
  ASSERT_FALSE(got->ok());
  EXPECT_EQ(got->error().code, Errc::kUnavailable);
  EXPECT_EQ(dispatcher_->retries(),
            static_cast<std::uint64_t>(options.retry.maxRetries));
}

TEST_F(DispatcherFixture, DeploymentTimeoutFiresWhenNeverReady) {
  DispatcherOptions options;
  options.deployTimeout = 5_s;
  options.retry.maxRetries = 0;  // hard deadline == deployTimeout
  options.cloudFallback = false;
  scheduler_ = makeProximityScheduler();
  dispatcher_ = std::make_unique<Dispatcher>(
      sim_, memory_, *scheduler_,
      std::vector<ClusterAdapter*>{&near_, &far_, &cloud_}, &recorder_,
      options);
  near_.imageCached = true;
  near_.created = true;
  near_.neverReady = true;  // scale-up succeeds; port never opens

  std::optional<Result<Redirect>> got;
  dispatcher_->resolve(model_, Ipv4(10, 0, 2, 1),
                       [&](Result<Redirect> r) { got = std::move(r); });
  sim_.runUntil(30_s);
  ASSERT_TRUE(got.has_value());
  ASSERT_FALSE(got->ok());
  EXPECT_EQ(got->error().code, Errc::kTimeout);
  EXPECT_EQ(dispatcher_->pendingDeployments(), 0u);
}

TEST_F(DispatcherFixture, AdapterLookupHelpers) {
  makeDispatcher(makeProximityScheduler());
  EXPECT_EQ(dispatcher_->adapterByName("near"), &near_);
  EXPECT_EQ(dispatcher_->adapterByName("nope"), nullptr);
  EXPECT_EQ(dispatcher_->cloudAdapter(), &cloud_);
}

TEST_F(DispatcherFixture, EnsureReadyReturnsExistingInstanceImmediately) {
  makeDispatcher(makeProximityScheduler());
  near_.running = true;
  std::optional<Result<Endpoint>> got;
  dispatcher_->ensureReady(model_, near_,
                           [&](Result<Endpoint> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_EQ(got->value(), near_.instance);
  EXPECT_TRUE(near_.log.empty());
  EXPECT_EQ(dispatcher_->deploymentsTriggered(), 0u);
}

}  // namespace
}  // namespace edgesim::core
