// Unit and property tests for the util module: rng, stats, strings, units,
// config, table, thread pool, result.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>

#include "util/config.hpp"
#include "util/json.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace edgesim {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent1(7);
  Rng parent2(7);
  Rng childA = parent1.fork(1);
  Rng childB = parent2.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childA(), childB());
  // Forks with different tags differ.
  Rng p(7);
  Rng c1 = p.fork(1);
  Rng p2(7);
  Rng c2 = p2.fork(2);
  EXPECT_NE(c1(), c2());
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniformInt(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(6);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(1.5, 2.0), 1.5);
}

TEST(Rng, ZipfInRangeAndMonotoneFrequency) {
  Rng rng(9);
  constexpr std::uint64_t n = 20;
  std::vector<int> counts(n + 1, 0);
  for (int i = 0; i < 200000; ++i) {
    const auto r = rng.zipf(n, 1.1);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, n);
    ++counts[r];
  }
  // Rank 1 must dominate rank 5 which dominates rank 20.
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[5], counts[20]);
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.zipf(1, 1.0), 1u);
}

// -------------------------------------------------------------- stats ----

TEST(OnlineStats, MatchesDirectComputation) {
  OnlineStats stats;
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  for (double x : xs) stats.add(x);
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.count(), xs.size());
}

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(Samples, MedianOddEven) {
  Samples s;
  for (double v : {5.0, 1.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);  // interpolated between 3 and 5
}

TEST(Samples, QuantileEndpoints) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.95), 95.05, 1e-9);
}

TEST(Samples, AddAfterQuantileInvalidatesCache) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

// Property: quantile is monotone in q.
class QuantileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotone, MonotoneNondecreasing) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Samples s;
  const int n = 1 + static_cast<int>(rng.uniformInt(0, 500));
  for (int i = 0; i < n; ++i) s.add(rng.normal(0, 10));
  double prev = s.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = s.quantile(q);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone, ::testing::Range(1, 21));

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps into bin 0
  h.add(100.0);  // clamps into last bin
  EXPECT_DOUBLE_EQ(h.binWeight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.binWeight(9), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.binHigh(0), 25.0);
  EXPECT_DOUBLE_EQ(h.binLow(3), 75.0);
  EXPECT_DOUBLE_EQ(h.binHigh(3), 100.0);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  h.add(1.5);
  const auto text = h.render(10);
  EXPECT_NE(text.find("##########"), std::string::npos);
}

// ------------------------------------------------------------- strings ----

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNonEmpty) {
  const auto parts = splitNonEmpty("/a//b/", '/');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, TrimEdges) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(startsWith("nginx:1.23", "nginx"));
  EXPECT_FALSE(startsWith("ng", "nginx"));
  EXPECT_TRUE(endsWith("web-asm:amd64", ":amd64"));
  EXPECT_FALSE(endsWith("d64", ":amd64"));
}

TEST(Strings, JoinAndLower) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(toLower("NgInX"), "nginx");
}

TEST(Strings, NumberPredicates) {
  EXPECT_TRUE(isInteger("42"));
  EXPECT_TRUE(isInteger("-7"));
  EXPECT_FALSE(isInteger("4.2"));
  EXPECT_FALSE(isInteger("x"));
  EXPECT_FALSE(isInteger(""));
  EXPECT_TRUE(isNumber("4.2"));
  EXPECT_TRUE(isNumber("-1e3"));
  EXPECT_FALSE(isNumber("4.2.3"));
}

TEST(Strings, Strprintf) {
  EXPECT_EQ(strprintf("%s=%d", "x", 7), "x=7");
  EXPECT_EQ(strprintf("%.2f", 1.0 / 3), "0.33");
}

// --------------------------------------------------------------- units ----

TEST(Units, ParseBytesVariants) {
  Bytes b;
  ASSERT_TRUE(parseBytes("6.18 KiB", b));
  EXPECT_EQ(b.value, static_cast<std::uint64_t>(std::llround(6.18 * 1024)));
  ASSERT_TRUE(parseBytes("135MiB", b));
  EXPECT_EQ(b.value, 135ull * 1024 * 1024);
  ASSERT_TRUE(parseBytes("308 MiB", b));
  EXPECT_EQ(b.value, 308ull * 1024 * 1024);
  ASSERT_TRUE(parseBytes("512", b));
  EXPECT_EQ(b.value, 512u);
  ASSERT_TRUE(parseBytes("1.5GB", b));
  EXPECT_EQ(b.value, 1500000000u);
}

TEST(Units, ParseBytesRejectsGarbage) {
  Bytes b;
  EXPECT_FALSE(parseBytes("", b));
  EXPECT_FALSE(parseBytes("MiB", b));
  EXPECT_FALSE(parseBytes("abcMiB", b));
  EXPECT_FALSE(parseBytes("-3MiB", b));
}

TEST(Units, FormatBytesPicksUnit) {
  EXPECT_EQ(formatBytes(Bytes{100}), "100 B");
  EXPECT_EQ(formatBytes(2048_B), "2.00 KiB");
  EXPECT_EQ(formatBytes(135_MiB), "135.0 MiB");
}

TEST(Units, TransmissionTime) {
  // 1 Gbps, 125 bytes = 1000 bits -> 1 us.
  EXPECT_EQ((1_Gbps).transmissionNanos(Bytes{125}), 1000);
  // Zero rate means "infinite" (no serialisation delay modelled).
  EXPECT_EQ((0_bps).transmissionNanos(1_MiB), 0);
}

TEST(Units, ByteLiteralsAndArithmetic) {
  EXPECT_EQ((1_KiB).value, 1024u);
  EXPECT_EQ((1_MiB + 1_KiB).value, 1024u * 1024 + 1024);
  Bytes b = 2_KiB;
  b -= 1_KiB;
  EXPECT_EQ(b, 1_KiB);
}

// -------------------------------------------------------------- config ----

TEST(Config, ParseBasics) {
  const auto result = Config::parse(R"(
# controller configuration
scheduler = proximity
flow.idle_timeout_ms = 15000
waiting = true
ratio = 0.75
)");
  ASSERT_TRUE(result.ok());
  const auto& config = result.value();
  EXPECT_EQ(config.getStringOr("scheduler", ""), "proximity");
  EXPECT_EQ(config.getIntOr("flow.idle_timeout_ms", 0), 15000);
  EXPECT_TRUE(config.getBoolOr("waiting", false));
  EXPECT_DOUBLE_EQ(config.getDoubleOr("ratio", 0), 0.75);
}

TEST(Config, MissingKeysUseFallbacks) {
  Config config;
  EXPECT_EQ(config.getStringOr("nope", "fallback"), "fallback");
  EXPECT_EQ(config.getIntOr("nope", -1), -1);
  EXPECT_FALSE(config.getInt("nope").has_value());
}

TEST(Config, MalformedLinesRejected) {
  EXPECT_FALSE(Config::parse("key_without_equals").ok());
  EXPECT_FALSE(Config::parse("= value").ok());
}

TEST(Config, TypeMismatchReturnsNullopt) {
  Config config;
  config.set("x", "abc");
  EXPECT_FALSE(config.getInt("x").has_value());
  EXPECT_FALSE(config.getBool("x").has_value());
  EXPECT_FALSE(config.getDouble("x").has_value());
}

TEST(Config, CommentsAndOverride) {
  const auto result = Config::parse("a = 1 # trailing\na = 2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().getIntOr("a", 0), 2);
}

// --------------------------------------------------------------- table ----

TEST(Table, RenderAlignsColumns) {
  Table t({"Service", "Docker", "K8s"});
  t.addRow({"Nginx", "0.6", "3.1"});
  t.addRow({"ResNet", "4.1", "7.9"});
  const auto text = t.render();
  EXPECT_NE(text.find("| Service |"), std::string::npos);
  EXPECT_NE(text.find("| Nginx "), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.addRow({"plain", "has,comma"});
  t.addRow({"has\"quote", "x"});
  const auto csv = t.csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(64);
  ThreadPool::parallelFor(64, 8, [&hits](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
  SUCCEED();
}

// -------------------------------------------------------------- result ----

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err = makeError(Errc::kNotFound, "missing");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, Errc::kNotFound);
  EXPECT_EQ(err.error().toString(), "not-found: missing");
  EXPECT_EQ(err.valueOr(-1), -1);
}


// --------------------------------------------------------------- Json ----

TEST(Json, RoundTripsValuesThroughDumpAndParse) {
  JsonValue obj = JsonValue::object();
  obj.set("name", "edge \"svc\"\n");
  obj.set("count", 42);
  obj.set("ratio", 0.25);
  obj.set("precise", 0.1);  // not exactly representable; must round-trip
  obj.set("on", true);
  obj.set("off", false);
  obj.set("nothing", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push(1);
  arr.push(2.5);
  arr.push("three");
  obj.set("items", std::move(arr));

  for (const int indent : {0, 2}) {
    const auto parsed = JsonValue::parse(obj.dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.error().toString();
    const JsonValue& v = parsed.value();
    EXPECT_EQ(v.stringOr("name", ""), "edge \"svc\"\n");
    EXPECT_EQ(v.numberOr("count", -1), 42);
    EXPECT_EQ(v.numberOr("ratio", -1), 0.25);
    EXPECT_EQ(v.numberOr("precise", -1), 0.1);
    EXPECT_TRUE(v.find("on")->asBool());
    EXPECT_FALSE(v.find("off")->asBool());
    EXPECT_TRUE(v.find("nothing")->isNull());
    const JsonValue* items = v.find("items");
    ASSERT_NE(items, nullptr);
    ASSERT_EQ(items->size(), 3u);
    EXPECT_EQ(items->at(0).asNumber(), 1);
    EXPECT_EQ(items->at(2).asString(), "three");
  }
}

TEST(Json, ObjectKeepsInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  obj.set("alpha", 9);  // overwrite keeps the original position
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(Json, ParseRejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
        "\"unterminated", "{\"a\":1}extra"}) {
    EXPECT_FALSE(JsonValue::parse(bad).ok()) << bad;
  }
}

TEST(Json, ParseHandlesEscapesAndNesting) {
  const auto parsed = JsonValue::parse(
      "  {\"a\" : [ {\"b\": \"x\\u0041\\n\"} , -1.5e2 ] }  ");
  ASSERT_TRUE(parsed.ok()) << parsed.error().toString();
  const JsonValue* a = parsed.value().find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 2u);
  EXPECT_EQ(a->at(0).stringOr("b", ""), "xA\n");
  EXPECT_EQ(a->at(1).asNumber(), -150.0);
}

TEST(Status, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  Status bad = makeError(Errc::kTimeout, "deadline");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::kTimeout);
}

}  // namespace
}  // namespace edgesim
