// Tests for the metrics module's machine-readable bench output: the
// schema-versioned BenchReport JSON round-trip and the bench_diff
// comparator's regression rules.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "metrics/bench_report.hpp"
#include "metrics/recorder.hpp"
#include "util/json.hpp"

namespace edgesim::metrics {
namespace {

Samples makeSamples(std::initializer_list<double> values) {
  Samples s;
  for (const double v : values) s.add(v);
  return s;
}

BenchReport makeReport() {
  BenchReport report("fig11_scaleup");
  report.setMeta("seed", "1");
  report.setMeta("cluster", "docker-egs");
  report.addSeries("nginx/docker-egs/total",
                   makeSamples({0.48, 0.51, 0.47, 0.52, 0.49}));
  report.addSeries("nginx/docker-egs/wait",
                   makeSamples({0.10, 0.11, 0.09}));
  report.addScalar("nginx/docker-egs/failures", 0.0);
  return report;
}

// ---------------------------------------------------- schema round-trip ----

TEST(BenchReport, JsonCarriesSchemaFields) {
  const BenchReport report = makeReport();
  const JsonValue json = report.toJson();
  EXPECT_EQ(json.stringOr("schema", ""), BenchReport::kSchemaName);
  EXPECT_EQ(json.numberOr("schema_version", -1), BenchReport::kSchemaVersion);
  EXPECT_EQ(json.stringOr("bench", ""), "fig11_scaleup");
  const JsonValue* meta = json.find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->stringOr("seed", ""), "1");
  const JsonValue* series = json.find("series");
  ASSERT_NE(series, nullptr);
  const JsonValue* total = series->find("nginx/docker-egs/total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->numberOr("count", -1), 5);
  EXPECT_EQ(total->numberOr("median", -1), 0.49);
  EXPECT_EQ(total->numberOr("min", -1), 0.47);
  EXPECT_EQ(total->numberOr("max", -1), 0.52);
  ASSERT_TRUE(total->has("samples"));
  EXPECT_EQ(total->find("samples")->size(), 5u);
}

TEST(BenchReport, RoundTripsThroughDumpAndParse) {
  const BenchReport report = makeReport();
  const auto parsed = JsonValue::parse(report.toJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.error().toString();
  const auto back = BenchReport::fromJson(parsed.value());
  ASSERT_TRUE(back.ok()) << back.error().toString();
  EXPECT_EQ(back.value().name(), report.name());
  EXPECT_EQ(back.value().meta(), report.meta());
  ASSERT_EQ(back.value().series().size(), report.series().size());
  for (const auto& [name, stats] : report.series()) {
    const SeriesStats* other = back.value().findSeries(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(other->count, stats.count);
    EXPECT_EQ(other->median, stats.median);
    EXPECT_EQ(other->p95, stats.p95);
    EXPECT_EQ(other->samples, stats.samples);
  }
}

TEST(BenchReport, WriteAndReadFile) {
  const std::string path = ::testing::TempDir() + "bench_report_test.json";
  const BenchReport report = makeReport();
  ASSERT_TRUE(report.writeFile(path).ok());
  const auto back = BenchReport::fromFile(path);
  ASSERT_TRUE(back.ok()) << back.error().toString();
  EXPECT_EQ(back.value().name(), "fig11_scaleup");
  std::remove(path.c_str());
}

TEST(BenchReport, FromJsonRejectsWrongSchema) {
  JsonValue json = JsonValue::object();
  json.set("schema", "something-else");
  json.set("schema_version", 1);
  json.set("bench", "x");
  EXPECT_FALSE(BenchReport::fromJson(json).ok());
}

TEST(BenchReport, AddRecorderExportsAllSeries) {
  Recorder recorder;
  RequestRecord record;
  record.series = "warm";
  record.success = true;
  record.total = SimTime::millis(2);
  recorder.add(record);
  BenchReport report("x");
  report.addRecorder(recorder);
  const SeriesStats* warm = report.findSeries("warm");
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(warm->count, 1u);
  EXPECT_EQ(warm->median, 0.002);
}

// ------------------------------------------------------- compareReports ----

TEST(CompareReports, AcceptsIdenticalReports) {
  const BenchReport report = makeReport();
  const auto result = compareReports(report, report);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.seriesCompared, 3u);
  EXPECT_TRUE(result.regressions.empty());
}

TEST(CompareReports, FlagsInjectedTwentyPercentMedianRegression) {
  const BenchReport baseline = makeReport();
  BenchReport candidate = makeReport();
  // Inject a 20% slowdown into one series; the default tolerance is 10%.
  candidate.addSeries("nginx/docker-egs/total",
                      makeSamples({0.576, 0.612, 0.564, 0.624, 0.588}));
  const auto result = compareReports(baseline, candidate);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.regressions.empty());
  EXPECT_EQ(result.regressions.front().series, "nginx/docker-egs/total");
  EXPECT_EQ(result.regressions.front().metric, "median");
  EXPECT_NEAR(result.regressions.front().ratio(), 1.2, 1e-9);
  // The failure message names the regressed series.
  EXPECT_NE(result.regressions.front().toString().find(
                "nginx/docker-egs/total"),
            std::string::npos);
}

TEST(CompareReports, WithinToleranceIsNotARegression) {
  const BenchReport baseline = makeReport();
  BenchReport candidate = makeReport();
  // 5% slower: inside the default 10% tolerance.
  candidate.addSeries("nginx/docker-egs/total",
                      makeSamples({0.504, 0.5355, 0.4935, 0.546, 0.5145}));
  EXPECT_TRUE(compareReports(baseline, candidate).ok());
}

TEST(CompareReports, FlagsMissingSeries) {
  const BenchReport baseline = makeReport();
  BenchReport candidate("fig11_scaleup");
  candidate.addSeries("nginx/docker-egs/total",
                      makeSamples({0.48, 0.51, 0.47, 0.52, 0.49}));
  const auto result = compareReports(baseline, candidate);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.missingSeries.size(), 2u);
}

TEST(CompareReports, FlagsSampleCountMismatch) {
  const BenchReport baseline = makeReport();
  BenchReport candidate = makeReport();
  candidate.addSeries("nginx/docker-egs/total",
                      makeSamples({0.48, 0.51, 0.47}));
  const auto result = compareReports(baseline, candidate);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.regressions.empty());
  EXPECT_EQ(result.regressions.front().metric, "count");
}

TEST(CompareReports, AbsoluteFloorIgnoresSubMicrosecondNoise) {
  BenchReport baseline("micro");
  baseline.addScalar("rng", 2e-9);
  BenchReport candidate("micro");
  candidate.addScalar("rng", 3e-9);  // +50%, but only one nanosecond
  EXPECT_TRUE(compareReports(baseline, candidate).ok());
}

TEST(CompareReports, ReportsImprovedSeries) {
  const BenchReport baseline = makeReport();
  BenchReport candidate = makeReport();
  candidate.addSeries("nginx/docker-egs/total",
                      makeSamples({0.24, 0.255, 0.235, 0.26, 0.245}));
  const auto result = compareReports(baseline, candidate);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.improvedSeries.size(), 1u);
  EXPECT_EQ(result.improvedSeries.front(), "nginx/docker-egs/total");
}

TEST(CompareReports, CustomToleranceWidensTheGate) {
  const BenchReport baseline = makeReport();
  BenchReport candidate = makeReport();
  candidate.addSeries("nginx/docker-egs/total",
                      makeSamples({0.576, 0.612, 0.564, 0.624, 0.588}));
  CompareOptions options;
  options.tolerance = 0.25;  // 20% slowdown is now acceptable
  EXPECT_TRUE(compareReports(baseline, candidate, options).ok());
}

}  // namespace
}  // namespace edgesim::metrics
