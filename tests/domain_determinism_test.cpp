// DomainDeterminism: the time-domain engine must not perturb results.
//
// Three layers of guarantees, in decreasing strictness:
//
//   1. BIT-IDENTICAL: with the default single domain, the refactored
//      engine reproduces the pre-domain determinism goldens bytewise
//      (same files determinism_test checks -- asserted here through the
//      shared scenario so the guarantee is explicit about domains).
//   2. OUTCOME-IDENTICAL across partitionings: the per-cluster testbed
//      partition and multi-domain cluster traces must resolve exactly the
//      same requests with the same totals, even though cross-domain
//      management hops legally shift individual timestamps.
//   3. OUTCOME-IDENTICAL across drivers: the conservative parallel
//      scheduler must produce exactly the sequential results, event for
//      event, at any domain count.
//
// Runs under `ctest -L concurrency`, so the TSan CI job covers the
// parallel scheduler's locking.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "determinism_scenario.hpp"
#include "sim/domain_scheduler.hpp"
#include "util/lane_executor.hpp"
#include "workload/cluster_trace.hpp"

namespace edgesim::core {
namespace {

class DomainDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DomainDeterminism, SingleDomainReproducesGoldenBytewise) {
  const std::uint64_t seed = GetParam();
  const auto result =
      runScenario(seed, /*flowShards=*/1, DomainPartition::kSingle);
  if (writeGoldenRequested()) {
    GTEST_SKIP() << "goldens are owned by determinism_test";
  }
  const std::string golden = readFile(goldenPath(seed));
  ASSERT_FALSE(golden.empty())
      << "missing golden " << goldenPath(seed)
      << " (run determinism_test with EDGESIM_WRITE_GOLDEN=1)";
  EXPECT_EQ(result.combined(), golden);
}

TEST_P(DomainDeterminism, PerClusterPartitionKeepsOutcomes) {
  // Timestamps may shift (cluster management calls pay the cross-domain
  // lookahead), so compare the order/timing-insensitive views: request
  // outcome totals and per-series counts.
  const std::uint64_t seed = GetParam();
  const auto single =
      runScenario(seed, /*flowShards=*/1, DomainPartition::kSingle);
  const auto partitioned =
      runScenario(seed, /*flowShards=*/1, DomainPartition::kPerCluster);
  EXPECT_EQ(single.counters, partitioned.counters);
  EXPECT_EQ(single.outcomes, partitioned.outcomes);
}

TEST_P(DomainDeterminism, PerClusterPartitionIsReproducible) {
  const std::uint64_t seed = GetParam();
  const auto first =
      runScenario(seed, /*flowShards=*/1, DomainPartition::kPerCluster);
  const auto second =
      runScenario(seed, /*flowShards=*/1, DomainPartition::kPerCluster);
  EXPECT_EQ(first.combined(), second.combined());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainDeterminism, ::testing::Values(1u, 7u));

// ---- cluster trace: partition- and driver-independence ---------------------

workload::ClusterTraceParams traceParams(std::uint64_t seed) {
  workload::ClusterTraceParams params;
  params.seed = seed;
  params.clusters = 8;
  params.requestsPerCluster = 60;
  return params;
}

std::vector<workload::RequestOutcome> runTraceSequential(
    std::uint64_t seed, std::uint32_t domains) {
  Simulation sim(seed);
  workload::ClusterTraceRunner trace(sim, traceParams(seed), domains);
  trace.arm();
  sim.runUntil(trace.horizon());
  return trace.outcomes();
}

std::vector<workload::RequestOutcome> runTraceParallel(std::uint64_t seed,
                                                       std::uint32_t domains,
                                                       std::size_t workers) {
  Simulation sim(seed);
  workload::ClusterTraceRunner trace(sim, traceParams(seed), domains);
  trace.arm();
  LaneExecutor pool(workers);
  DomainScheduler scheduler(sim);
  scheduler.runParallel(pool, trace.horizon());
  return trace.outcomes();
}

class ClusterTraceDomains : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterTraceDomains, DomainCountDoesNotChangeOutcomes) {
  const std::uint64_t seed = GetParam();
  const auto reference = runTraceSequential(seed, 1);
  ASSERT_EQ(reference.size(), 8u * 60u);
  EXPECT_EQ(runTraceSequential(seed, 2), reference);
  EXPECT_EQ(runTraceSequential(seed, 4), reference);
  EXPECT_EQ(runTraceSequential(seed, 8), reference);
}

TEST_P(ClusterTraceDomains, ParallelDriverMatchesSequential) {
  const std::uint64_t seed = GetParam();
  const auto reference = runTraceSequential(seed, 1);
  EXPECT_EQ(runTraceParallel(seed, 4, /*workers=*/4), reference);
  EXPECT_EQ(runTraceParallel(seed, 8, /*workers=*/4), reference);
  // One domain per cluster, more domains than workers: the lane mapping
  // multiplexes domains onto workers without changing results.
  EXPECT_EQ(runTraceParallel(seed, 8, /*workers=*/3), reference);
}

TEST_P(ClusterTraceDomains, ParallelRunIsReproducible) {
  const std::uint64_t seed = GetParam();
  const auto first = runTraceParallel(seed, 4, /*workers=*/4);
  const auto second = runTraceParallel(seed, 4, /*workers=*/4);
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterTraceDomains,
                         ::testing::Values(1u, 7u, 1234u));

}  // namespace
}  // namespace edgesim::core
