// Tests for the serverless (Wasm-style FaaS) extension: the function
// lifecycle (fetch/compile/activate/evict), the ServerlessAdapter mapping
// of fig. 4 phases, transparent access backed by functions, and the
// container-vs-serverless cold-start gap the paper's future work targets.
#include <gtest/gtest.h>

#include <optional>

#include "core/testbed.hpp"
#include "serverless/faas_runtime.hpp"

namespace edgesim {
namespace {

using namespace timeliterals;
using core::ClusterMode;
using core::Testbed;
using core::TestbedOptions;
using serverless::FaasParams;
using serverless::FaasRuntime;
using serverless::FunctionSpec;

const Endpoint kAddr{Ipv4(203, 0, 113, 10), 80};

// ------------------------------------------------------------- runtime ----

class FaasFixture : public ::testing::Test {
 protected:
  FaasFixture()
      : sim_(91),
        net_(sim_),
        node_(net_, "edge", Ipv4(10, 0, 1, 1), Mac(0x10)),
        client_(net_, "client", Ipv4(10, 0, 0, 1), Mac(0x01)),
        runtime_(sim_, node_) {
    net_.connect(client_, node_, 1_ms, 1_Gbps);
    spec_.name = "fn";
    spec_.profile.requestCompute = SimTime::micros(300);
  }

  Simulation sim_;
  Network net_;
  Host node_;
  Host client_;
  FaasRuntime runtime_;
  FunctionSpec spec_;
};

TEST_F(FaasFixture, LifecyclePhases) {
  EXPECT_FALSE(runtime_.moduleCached("fn"));
  std::optional<Status> fetched;
  runtime_.fetchModule(spec_, [&](Status s) { fetched = s; });
  sim_.run();
  ASSERT_TRUE(fetched.has_value() && fetched->ok());
  EXPECT_TRUE(runtime_.moduleCached("fn"));
  // ~80 ms RTT + 2 MiB at 400 Mbps (~42 ms).
  EXPECT_GT(sim_.now(), 100_ms);
  EXPECT_LT(sim_.now(), 200_ms);

  std::optional<Status> deployed;
  runtime_.deployFunction(spec_, [&](Status s) { deployed = s; });
  sim_.run();
  ASSERT_TRUE(deployed.has_value() && deployed->ok());
  EXPECT_TRUE(runtime_.deployed("fn"));

  const SimTime beforeActivate = sim_.now();
  std::optional<Result<Endpoint>> endpoint;
  runtime_.activate("fn", [&](Result<Endpoint> r) { endpoint = std::move(r); });
  sim_.run();
  ASSERT_TRUE(endpoint.has_value() && endpoint->ok());
  // Cold start is milliseconds, not hundreds of them.
  EXPECT_LT((sim_.now() - beforeActivate).toMillis(), 20.0);
  EXPECT_EQ(runtime_.coldStarts(), 1u);
  EXPECT_EQ(runtime_.activeEndpoints("fn").size(), 1u);
}

TEST_F(FaasFixture, PhasePreconditionsEnforced) {
  std::optional<Status> deployed;
  runtime_.deployFunction(spec_, [&](Status s) { deployed = s; });
  sim_.run();
  ASSERT_TRUE(deployed.has_value());
  EXPECT_EQ(deployed->error().code, Errc::kFailedPrecondition);

  std::optional<Result<Endpoint>> activated;
  runtime_.activate("fn", [&](Result<Endpoint> r) { activated = std::move(r); });
  sim_.run();
  ASSERT_TRUE(activated.has_value());
  EXPECT_FALSE(activated->ok());
}

TEST_F(FaasFixture, ActivatedFunctionServesHttp) {
  runtime_.fetchModule(spec_, [](Status) {});
  sim_.run();
  runtime_.deployFunction(spec_, [](Status) {});
  sim_.run();
  std::optional<Endpoint> endpoint;
  runtime_.activate("fn", [&](Result<Endpoint> r) {
    ASSERT_TRUE(r.ok());
    endpoint = r.value();
  });
  sim_.run();
  ASSERT_TRUE(endpoint.has_value());

  std::optional<Result<HttpExchange>> got;
  client_.httpRequest(*endpoint, HttpRequest{},
                      [&](Result<HttpExchange> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_EQ(got->value().response.status, 200);
}

TEST_F(FaasFixture, SecondActivationIsWarm) {
  runtime_.fetchModule(spec_, [](Status) {});
  sim_.run();
  runtime_.deployFunction(spec_, [](Status) {});
  sim_.run();
  runtime_.activate("fn", [](Result<Endpoint>) {});
  sim_.run();
  const SimTime before = sim_.now();
  runtime_.activate("fn", [](Result<Endpoint>) {});
  sim_.run();
  EXPECT_EQ(sim_.now(), before);  // already active: no cold start
  EXPECT_EQ(runtime_.coldStarts(), 1u);
}

TEST_F(FaasFixture, IdleEvictionScalesToZeroAndReactivates) {
  FaasParams params;
  params.idleEviction = 2_s;
  FaasRuntime evicting(sim_, node_, params);
  evicting.fetchModule(spec_, [](Status) {});
  sim_.run();
  evicting.deployFunction(spec_, [](Status) {});
  sim_.run();
  evicting.activate("fn", [](Result<Endpoint>) {});
  sim_.run();  // runs through eviction timer
  EXPECT_EQ(evicting.evictions(), 1u);
  EXPECT_TRUE(evicting.activeEndpoints("fn").empty());
  // The compiled module survives; reactivation is just a cold start.
  EXPECT_TRUE(evicting.deployed("fn"));
  std::optional<Result<Endpoint>> again;
  evicting.activate("fn", [&](Result<Endpoint> r) { again = std::move(r); });
  sim_.run();
  ASSERT_TRUE(again.has_value() && again->ok());
  EXPECT_EQ(evicting.coldStarts(), 2u);
}

TEST_F(FaasFixture, DeactivateAndRemove) {
  runtime_.fetchModule(spec_, [](Status) {});
  sim_.run();
  runtime_.deployFunction(spec_, [](Status) {});
  sim_.run();
  runtime_.activate("fn", [](Result<Endpoint>) {});
  sim_.run();
  const auto port = runtime_.activeEndpoints("fn").front().port;
  runtime_.deactivate("fn", [](Status) {});
  sim_.run();
  EXPECT_FALSE(node_.listening(port));
  EXPECT_TRUE(runtime_.deployed("fn"));
  EXPECT_GT(runtime_.moduleCacheBytes().value, 0u);
  runtime_.removeFunction("fn", [](Status) {});
  sim_.run();
  EXPECT_FALSE(runtime_.deployed("fn"));
  EXPECT_EQ(runtime_.moduleCacheBytes().value, 0u);
}

// ------------------------------------------------------------- adapter ----

TEST(ServerlessAdapterTest, SupportHeuristics) {
  core::ServiceCatalog catalog;
  auto build = [&](const std::string& key) {
    const auto annotated = core::annotateServiceYaml(
        catalog.entry(key).yaml, kAddr, core::AnnotatorConfig{});
    return core::buildServiceModel(annotated.value(), kAddr,
                                   catalog.profiles())
        .value();
  };
  EXPECT_TRUE(core::ServerlessAdapter::supportsService(build("asm")));
  EXPECT_TRUE(core::ServerlessAdapter::supportsService(build("nginx")));
  // TensorFlow Serving does not fit a Wasm function.
  EXPECT_FALSE(core::ServerlessAdapter::supportsService(build("resnet")));
  // Multi-container apps don't either.
  EXPECT_FALSE(core::ServerlessAdapter::supportsService(build("nginx-py")));
}

TEST(ServerlessIntegration, TransparentAccessOverFunctions) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kServerlessOnly;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kAddr).ok());

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kAddr, "first",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(30_s);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().toString();
  // Fetch + compile + cold start + handshake: well under the container
  // path, even with a COLD module cache.
  EXPECT_LT(got->value().timings.timeTotal().toSeconds(), 0.4);
  EXPECT_EQ(bed.faasRuntime()->coldStarts(), 1u);
}

TEST(ServerlessIntegration, ColdStartGapVsContainers) {
  // Same service, both paths warm at the artifact level (image cached /
  // module compiled), instance scaled to zero: the serverless first
  // response is an order of magnitude faster.
  double containerFirst = -1;
  {
    TestbedOptions options;
    options.clusterMode = ClusterMode::kDockerOnly;
    Testbed bed(options);
    ASSERT_TRUE(bed.registerCatalogService("nginx", kAddr).ok());
    bed.warmImageCache("nginx");
    bed.requestCatalog(0, "nginx", kAddr, "t", [&](Result<HttpExchange> r) {
      ASSERT_TRUE(r.ok());
      containerFirst = r.value().timings.timeTotal().toSeconds();
    });
    bed.sim().runUntil(30_s);
  }
  double faasFirst = -1;
  {
    TestbedOptions options;
    options.clusterMode = ClusterMode::kServerlessOnly;
    Testbed bed(options);
    ASSERT_TRUE(bed.registerCatalogService("nginx", kAddr).ok());
    // Pre-stage module + compile (the analogue of a cached image +
    // created containers), leave it deactivated.
    const auto* model = bed.controller().serviceAt(kAddr);
    auto spec = core::ServerlessAdapter::toFunctionSpec(*model);
    bed.faasRuntime()->fetchModule(spec, [](Status) {});
    bed.sim().runUntil(1_s);
    bed.faasRuntime()->deployFunction(spec, [](Status) {});
    bed.sim().runUntil(2_s);
    bed.requestCatalog(0, "nginx", kAddr, "t", [&](Result<HttpExchange> r) {
      ASSERT_TRUE(r.ok());
      faasFirst = r.value().timings.timeTotal().toSeconds();
    });
    bed.sim().runUntil(30_s);
  }
  ASSERT_GT(containerFirst, 0);
  ASSERT_GT(faasFirst, 0);
  EXPECT_GT(containerFirst / faasFirst, 5.0);  // Gackstatter et al.'s gap
}

TEST(ServerlessIntegration, SideBySideSchedulerPrefersListedOrder) {
  // Docker and FaaS side by side at the same distance rank: the proximity
  // scheduler takes the first listed deployable cluster (Docker), and the
  // FaaS runtime can still be driven explicitly -- both serve the same
  // service address transparently.
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.serverlessEdge = true;
  Testbed bed(options);
  ASSERT_TRUE(bed.registerCatalogService("nginx", kAddr).ok());
  bed.warmImageCache("nginx");

  std::optional<Result<HttpExchange>> got;
  bed.requestCatalog(0, "nginx", kAddr, "t",
                     [&](Result<HttpExchange> r) { got = std::move(r); });
  bed.sim().runUntil(30_s);
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_EQ(bed.dockerEngine().runtime().startedCount(), 1u);

  // Explicitly deploy the same service onto the FaaS runtime too.
  const auto* model = bed.controller().serviceAt(kAddr);
  std::optional<Result<Endpoint>> faas;
  bed.controller().dispatcher().ensureReady(
      *model, *bed.serverlessAdapter(),
      [&](Result<Endpoint> r) { faas = std::move(r); });
  bed.sim().runUntil(60_s);
  ASSERT_TRUE(faas.has_value());
  ASSERT_TRUE(faas->ok()) << faas->error().toString();
  EXPECT_EQ(bed.serverlessAdapter()->readyInstances(*model).size(), 1u);
}

}  // namespace
}  // namespace edgesim
