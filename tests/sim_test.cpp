// Tests for the discrete-event simulation engine: ordering, cancellation,
// determinism, periodic timers, and time formatting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace edgesim {
namespace {

using namespace timeliterals;

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ((5_s).toNanos(), 5'000'000'000);
  EXPECT_EQ((100_ms).toNanos(), 100'000'000);
  EXPECT_EQ((50_us).toNanos(), 50'000);
  EXPECT_EQ((7_ns).toNanos(), 7);
  EXPECT_DOUBLE_EQ((1500_ms).toSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::seconds(0.25).toMillis(), 250.0);
}

TEST(SimTime, ArithmeticAndComparison) {
  EXPECT_EQ(1_s + 500_ms, 1500_ms);
  EXPECT_EQ(2_s - 500_ms, 1500_ms);
  EXPECT_EQ((100_ms) * 3, 300_ms);
  EXPECT_EQ((1_s) / 4, 250_ms);
  EXPECT_LT(999_ms, 1_s);
  EXPECT_EQ((1_s).scaled(0.5), 500_ms);
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ((2_s).toString(), "2.000s");
  EXPECT_EQ((250_ms).toString(), "250.00ms");
  EXPECT_EQ((50_us).toString(), "50.0us");
  EXPECT_EQ((7_ns).toString(), "7ns");
}

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(30_ms, [&] { order.push_back(3); });
  sim.schedule(10_ms, [&] { order.push_back(1); });
  sim.schedule(20_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ms);
}

TEST(Simulation, EqualTimestampsRunInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, NestedSchedulingAdvancesTime) {
  Simulation sim;
  SimTime inner;
  sim.schedule(10_ms, [&] {
    sim.schedule(15_ms, [&] { inner = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner, 25_ms);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  auto handle = sim.schedule(10_ms, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, CancelAfterFireIsNoop) {
  Simulation sim;
  auto handle = sim.schedule(1_ms, [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
}

TEST(Simulation, CancelFromAnotherEvent) {
  Simulation sim;
  bool ran = false;
  auto victim = sim.schedule(20_ms, [&] { ran = true; });
  sim.schedule(10_ms, [&] { victim.cancel(); });
  sim.run();
  EXPECT_FALSE(ran);
  // Cancelled events do not advance the clock when drained.
  EXPECT_EQ(sim.now(), 10_ms);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(SimTime::millis(i * 10), [&] { ++count; });
  }
  sim.runUntil(45_ms);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.now(), 45_ms);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulation, RunUntilWithEmptyQueueAdvancesClock) {
  Simulation sim;
  sim.runUntil(1_s);
  EXPECT_EQ(sim.now(), 1_s);
}

TEST(Simulation, StopHaltsProcessing) {
  Simulation sim;
  int count = 0;
  sim.schedule(1_ms, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule(2_ms, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.stopped());
  sim.run();  // resumes with remaining events
  EXPECT_EQ(count, 2);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(1_ms, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, ProcessedAndPendingCounts) {
  Simulation sim;
  auto h1 = sim.schedule(1_ms, [] {});
  sim.schedule(2_ms, [] {});
  EXPECT_EQ(sim.pendingEvents(), 2u);
  h1.cancel();
  sim.run();
  EXPECT_EQ(sim.processedEvents(), 1u);
}

TEST(Simulation, RngDeterminismAcrossRuns) {
  auto runOnce = [](std::uint64_t seed) {
    Simulation sim(seed);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 5; ++i) {
      sim.schedule(SimTime::millis(i), [&] { values.push_back(sim.rng()()); });
    }
    sim.run();
    return values;
  };
  EXPECT_EQ(runOnce(99), runOnce(99));
  EXPECT_NE(runOnce(99), runOnce(100));
}

// Property: an arbitrary batch of random schedules always executes in
// nondecreasing time order.
class EventOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(EventOrderProperty, NondecreasingExecutionTimes) {
  Simulation sim(static_cast<std::uint64_t>(GetParam()));
  std::vector<SimTime> fired;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 1);
  for (int i = 0; i < 200; ++i) {
    const auto delay = SimTime::micros(
        static_cast<std::int64_t>(rng.uniformInt(0, 1'000'000)));
    sim.schedule(delay, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 200u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderProperty, ::testing::Range(1, 16));

TEST(PeriodicTimer, FiresAtPeriodUntilStopped) {
  Simulation sim;
  std::vector<SimTime> ticks;
  PeriodicTimer timer;
  timer.start(sim, 100_ms, [&] {
    ticks.push_back(sim.now());
    return ticks.size() < 5;
  });
  sim.run();
  ASSERT_EQ(ticks.size(), 5u);
  EXPECT_EQ(ticks[0], SimTime::zero());  // default: fires immediately
  EXPECT_EQ(ticks[4], 400_ms);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, InitialDelayAndCancel) {
  Simulation sim;
  int ticks = 0;
  PeriodicTimer timer;
  timer.start(sim, 50_ms, [&] {
    ++ticks;
    return true;
  }, 200_ms);
  sim.schedule(320_ms, [&] { timer.cancel(); });
  sim.run();
  // Fires at 200, 250, 300; cancelled before 350.
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimer, RestartReplacesPrevious) {
  Simulation sim;
  int a = 0;
  int b = 0;
  PeriodicTimer timer;
  timer.start(sim, 10_ms, [&] {
    ++a;
    return a < 100;
  });
  timer.start(sim, 10_ms, [&] {
    ++b;
    return b < 3;
  });
  sim.run();
  EXPECT_EQ(a, 0);  // first schedule was replaced before running
  EXPECT_EQ(b, 3);
}

TEST(Simulation, TimePrefixFormat) {
  Simulation sim;
  sim.schedule(1500_ms, [] {});
  sim.run();
  EXPECT_EQ(sim.timePrefix(), "[t=   1.500000s] ");
}

// ---- time domains ----------------------------------------------------------

TEST(TimeDomains, SingleDomainByDefault) {
  Simulation sim;
  EXPECT_EQ(sim.domainCount(), 1u);
  EXPECT_EQ(sim.activeDomainId(), kControlDomain);
}

TEST(TimeDomains, ScheduleOnRunsInTargetDomainAfterLookahead) {
  Simulation sim;
  const DomainId d = sim.addDomain("edge");
  sim.connectDomains(kControlDomain, d, 5_ms);
  DomainId ranIn = kControlDomain;
  SimTime ranAt = SimTime::zero();
  sim.scheduleOn(d, SimTime::zero(), [&] {
    ranIn = sim.activeDomainId();
    ranAt = sim.now();
  });
  sim.run();
  EXPECT_EQ(ranIn, d);
  // Zero-delay cross-domain posts are clamped to the channel lookahead so
  // sequential and parallel drivers agree on timing.
  EXPECT_EQ(ranAt, 5_ms);
}

TEST(TimeDomains, SequentialRunInterleavesDomainsByTimestamp) {
  Simulation sim;
  const DomainId d = sim.addDomain("edge");
  sim.connectDomains(kControlDomain, d, 1_ms);
  std::vector<int> order;
  sim.scheduleAt(10_ms, [&] { order.push_back(0); });
  sim.scheduleOnAt(d, 5_ms, [&] { order.push_back(1); });
  sim.scheduleOnAt(d, 15_ms, [&] { order.push_back(2); });
  sim.scheduleAt(20_ms, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2, 3}));
}

TEST(TimeDomains, DomainScopeRoutesSetupScheduling) {
  Simulation sim;
  const DomainId d = sim.addDomain("edge");
  DomainId ranIn = kControlDomain;
  {
    Simulation::DomainScope scope(sim, d);
    sim.schedule(1_ms, [&] { ranIn = sim.activeDomainId(); });
  }
  sim.run();
  EXPECT_EQ(ranIn, d);
}

TEST(TimeDomains, DomainClocksAdvanceIndependently) {
  Simulation sim;
  const DomainId d = sim.addDomain("edge");
  sim.connectDomains(kControlDomain, d, 1_ms);
  sim.scheduleOnAt(d, 30_ms, [] {});
  sim.scheduleAt(10_ms, [] {});
  sim.run();
  // run() drives every domain to the final event's time; per-domain clocks
  // are still independently owned.
  EXPECT_EQ(sim.domain(d).now(), 30_ms);
  EXPECT_GE(sim.now(), 10_ms);
}

TEST(TimeDomains, ReschedulingInsideTargetDomainStaysLocal) {
  Simulation sim;
  const DomainId d = sim.addDomain("edge");
  sim.connectDomains(kControlDomain, d, 2_ms);
  std::vector<SimTime> ticks;
  sim.scheduleOn(d, SimTime::zero(), [&] {
    ticks.push_back(sim.now());
    sim.schedule(3_ms, [&] { ticks.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(ticks.size(), 2u);
  EXPECT_EQ(ticks[0], 2_ms);   // clamped to lookahead
  EXPECT_EQ(ticks[1], 5_ms);   // local re-schedule, no extra hop
}

TEST(TimeDomains, LookaheadTightensToSmallestLink) {
  Simulation sim;
  const DomainId d = sim.addDomain("edge");
  sim.connectDomains(kControlDomain, d, 5_ms);
  sim.connectDomains(kControlDomain, d, 2_ms);  // a faster link appears
  EXPECT_EQ(sim.domainLookahead(kControlDomain, d), 2_ms);
  SimTime ranAt = SimTime::zero();
  sim.scheduleOn(d, SimTime::zero(), [&] { ranAt = sim.now(); });
  sim.run();
  EXPECT_EQ(ranAt, 2_ms);
}

}  // namespace
}  // namespace edgesim
