// Tests for the workload module (bigFlows-like trace generation and the
// paper's service-extraction filter) and the metrics recorder.
#include <gtest/gtest.h>

#include <set>

#include "metrics/recorder.hpp"
#include "workload/bigflows.hpp"
#include "workload/trace.hpp"
#include "workload/trace_io.hpp"

namespace edgesim::workload {
namespace {

using namespace timeliterals;

TEST(TraceFilter, PortAndMinimumRequestFilter) {
  Trace trace;
  trace.duration = 300_s;
  // dst A on port 80 with 25 requests across two clients -> kept.
  TcpConversation a1;
  a1.srcIp = Ipv4(10, 0, 2, 1);
  a1.dst = Endpoint(Ipv4(198, 18, 1, 1), 80);
  for (int i = 0; i < 15; ++i) a1.requestTimes.push_back(SimTime::seconds(i));
  TcpConversation a2 = a1;
  a2.srcIp = Ipv4(10, 0, 2, 2);
  a2.requestTimes.resize(10);
  // dst B on port 80 with 19 requests -> dropped (below minimum).
  TcpConversation b;
  b.srcIp = Ipv4(10, 0, 2, 1);
  b.dst = Endpoint(Ipv4(198, 18, 1, 2), 80);
  for (int i = 0; i < 19; ++i) b.requestTimes.push_back(SimTime::seconds(i));
  // dst C on port 443 with 100 requests -> dropped (wrong port).
  TcpConversation c;
  c.srcIp = Ipv4(10, 0, 2, 3);
  c.dst = Endpoint(Ipv4(198, 18, 1, 3), 443);
  for (int i = 0; i < 100; ++i) c.requestTimes.push_back(SimTime::seconds(i));

  trace.conversations = {a1, a2, b, c};
  const auto services = extractServices(trace, 80, 20);
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].address, a1.dst);
  EXPECT_EQ(services[0].requestCount(), 25u);
  // Requests merged across conversations and sorted by time.
  for (std::size_t i = 1; i < services[0].requests.size(); ++i) {
    EXPECT_LE(services[0].requests[i - 1].first,
              services[0].requests[i].first);
  }
}

TEST(TraceFilter, ServicesOrderedByFirstRequest) {
  Trace trace;
  trace.duration = 300_s;
  for (int s = 0; s < 3; ++s) {
    TcpConversation conv;
    conv.srcIp = Ipv4(10, 0, 2, 1);
    conv.dst = Endpoint(Ipv4(198, 18, 1, static_cast<std::uint8_t>(s + 1)), 80);
    const double first = 100.0 - s * 30.0;  // later services come first
    for (int i = 0; i < 20; ++i) {
      conv.requestTimes.push_back(SimTime::seconds(first + i));
    }
    trace.conversations.push_back(conv);
  }
  const auto services = extractServices(trace);
  ASSERT_EQ(services.size(), 3u);
  EXPECT_LT(services[0].firstRequestAt(), services[1].firstRequestAt());
  EXPECT_LT(services[1].firstRequestAt(), services[2].firstRequestAt());
}

TEST(BigFlows, MatchesPaperAggregatesExactly) {
  const auto services = generateFilteredServices(BigFlowsParams{});
  ASSERT_EQ(services.size(), 42u);  // fig. 9: 42 services
  std::size_t total = 0;
  for (const auto& service : services) total += service.requestCount();
  EXPECT_EQ(total, 1708u);  // fig. 9: 1708 requests
  for (const auto& service : services) {
    EXPECT_GE(service.requestCount(), 20u);  // selection rule
    EXPECT_EQ(service.address.port, 80);
  }
}

TEST(BigFlows, HeavyTailAndDistinctAddresses) {
  const auto services = generateFilteredServices(BigFlowsParams{});
  std::set<Endpoint> addresses;
  std::size_t maxCount = 0;
  for (const auto& service : services) {
    addresses.insert(service.address);
    maxCount = std::max(maxCount, service.requestCount());
  }
  EXPECT_EQ(addresses.size(), services.size());
  // Hottest service well above the minimum (zipf tail).
  EXPECT_GT(maxCount, 100u);
}

TEST(BigFlows, FrontLoadedDeployments) {
  // fig. 10: most first-requests (=> deployments) land early in the trace.
  const auto services = generateFilteredServices(BigFlowsParams{});
  int inFirstMinute = 0;
  for (const auto& service : services) {
    if (service.firstRequestAt() < 60_s) ++inFirstMinute;
  }
  EXPECT_GT(inFirstMinute, static_cast<int>(services.size()) / 2);
}

TEST(BigFlows, AllRequestsWithinTraceDuration) {
  const BigFlowsParams params;
  const auto services = generateFilteredServices(params);
  for (const auto& service : services) {
    for (const auto& [time, client] : service.requests) {
      EXPECT_GE(time, SimTime::zero());
      EXPECT_LT(time, params.duration);
    }
  }
}

TEST(BigFlows, ClientsComeFromConfiguredFleet) {
  BigFlowsParams params;
  params.clientCount = 20;
  const auto services = generateFilteredServices(params);
  std::set<Ipv4> clients;
  for (const auto& service : services) {
    for (const auto& [time, client] : service.requests) clients.insert(client);
  }
  EXPECT_LE(clients.size(), 20u);
  EXPECT_GE(clients.size(), 15u);  // all 20 almost surely used
}

TEST(BigFlows, DeterministicPerSeedDifferentAcrossSeeds) {
  BigFlowsParams params;
  const auto a = generateBigFlows(params);
  const auto b = generateBigFlows(params);
  ASSERT_EQ(a.conversations.size(), b.conversations.size());
  for (std::size_t i = 0; i < a.conversations.size(); ++i) {
    EXPECT_EQ(a.conversations[i].requestTimes, b.conversations[i].requestTimes);
  }
  params.seed = 2;
  const auto c = generateBigFlows(params);
  bool anyDifferent = c.conversations.size() != a.conversations.size();
  for (std::size_t i = 0; !anyDifferent && i < a.conversations.size(); ++i) {
    anyDifferent = a.conversations[i].requestTimes != c.conversations[i].requestTimes;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(BigFlows, NoiseIsFilteredOut) {
  BigFlowsParams params;
  const auto trace = generateBigFlows(params);
  // The raw trace contains more conversations than the filtered services.
  std::set<Endpoint> rawDsts;
  for (const auto& conversation : trace.conversations) {
    rawDsts.insert(conversation.dst);
  }
  EXPECT_GT(rawDsts.size(), params.targetServices);
  const auto services = extractServices(trace, 80, params.minRequestsPerService);
  EXPECT_EQ(services.size(), params.targetServices);
}

// -------------------------------------------------------------- trace IO ----

TEST(TraceIo, RoundTripPreservesEverything) {
  BigFlowsParams params;
  params.targetServices = 5;
  params.targetRequests = 120;
  const Trace original = generateBigFlows(params);
  const std::string csv = traceToCsv(original);
  const auto parsed = traceFromCsv(csv, params.duration);
  ASSERT_TRUE(parsed.ok()) << parsed.error().toString();
  const Trace& loaded = parsed.value();
  EXPECT_EQ(loaded.totalRequests(), original.totalRequests());
  // The filter yields identical service sets.
  const auto a = extractServices(original, 80, params.minRequestsPerService);
  const auto b = extractServices(loaded, 80, params.minRequestsPerService);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].address, b[i].address);
    EXPECT_EQ(a[i].requestCount(), b[i].requestCount());
    EXPECT_EQ(a[i].firstRequestAt(), b[i].firstRequestAt());
  }
}

TEST(TraceIo, ParsesHandWrittenCsv) {
  const auto parsed = traceFromCsv(R"(src_ip,dst_ip,dst_port,time_seconds
# a comment
10.0.2.1,198.18.1.1,80,1.5
10.0.2.1,198.18.1.1,80,0.5
10.0.2.2,198.18.1.1,80,2.25
10.0.2.1,198.18.1.2,443,3.0
)");
  ASSERT_TRUE(parsed.ok()) << parsed.error().toString();
  const Trace& trace = parsed.value();
  ASSERT_EQ(trace.conversations.size(), 3u);
  EXPECT_EQ(trace.totalRequests(), 4u);
  // Request times are sorted within a conversation.
  EXPECT_EQ(trace.conversations[0].requestTimes[0], SimTime::seconds(0.5));
  EXPECT_EQ(trace.conversations[0].requestTimes[1], SimTime::seconds(1.5));
  // Duration inferred: latest request 3.0 -> 4 s ceiling... (3.0 + eps -> 3 s? rounded up to 3 s)
  EXPECT_GE(trace.duration, SimTime::seconds(3.0));
}

TEST(TraceIo, RejectsMalformedRows) {
  EXPECT_FALSE(traceFromCsv("").ok());
  EXPECT_FALSE(traceFromCsv("not,a,header,row\n1,2,3,4\n").ok());
  EXPECT_FALSE(
      traceFromCsv("src_ip,dst_ip,dst_port,time_seconds\nbad,row\n").ok());
  EXPECT_FALSE(traceFromCsv(
                   "src_ip,dst_ip,dst_port,time_seconds\nx,198.18.1.1,80,1\n")
                   .ok());
  EXPECT_FALSE(
      traceFromCsv(
          "src_ip,dst_ip,dst_port,time_seconds\n10.0.2.1,198.18.1.1,99999,1\n")
          .ok());
  EXPECT_FALSE(
      traceFromCsv(
          "src_ip,dst_ip,dst_port,time_seconds\n10.0.2.1,198.18.1.1,80,-1\n")
          .ok());
}

// Parameterized: the generator honours different target aggregates.
struct BigFlowsCase {
  std::size_t services;
  std::size_t requests;
};

class BigFlowsTargets : public ::testing::TestWithParam<BigFlowsCase> {};

TEST_P(BigFlowsTargets, HitsTargets) {
  BigFlowsParams params;
  params.targetServices = GetParam().services;
  params.targetRequests = GetParam().requests;
  const auto services = generateFilteredServices(params);
  EXPECT_EQ(services.size(), GetParam().services);
  std::size_t total = 0;
  for (const auto& service : services) total += service.requestCount();
  EXPECT_EQ(total, GetParam().requests);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BigFlowsTargets,
                         ::testing::Values(BigFlowsCase{1, 20},
                                           BigFlowsCase{5, 100},
                                           BigFlowsCase{42, 1708},
                                           BigFlowsCase{100, 5000}));

}  // namespace
}  // namespace edgesim::workload

namespace edgesim::metrics {
namespace {

using namespace timeliterals;

TEST(Recorder, RecordsAndSummarises) {
  Recorder recorder;
  for (int i = 1; i <= 5; ++i) {
    RequestRecord record;
    record.series = "nginx/docker";
    record.total = SimTime::millis(i * 100);
    recorder.add(record);
  }
  const auto* series = recorder.series("nginx/docker");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->count(), 5u);
  EXPECT_DOUBLE_EQ(series->median(), 0.3);
  EXPECT_EQ(recorder.totalRecords(), 5u);
  EXPECT_EQ(recorder.failureCount(), 0u);
}

TEST(Recorder, FailuresCountedSeparately) {
  Recorder recorder;
  RequestRecord bad;
  bad.series = "s";
  bad.success = false;
  recorder.add(bad);
  EXPECT_EQ(recorder.failureCount(), 1u);
  EXPECT_EQ(recorder.series("s"), nullptr);  // no sample recorded
}

TEST(Recorder, SummaryTableContainsSeries) {
  Recorder recorder;
  recorder.addSample("a/pull", 1.5);
  recorder.addSample("a/pull", 2.5);
  recorder.addSample("b/wait", 0.25);
  const auto table = recorder.summaryTable();
  const auto text = table.render();
  EXPECT_NE(text.find("a/pull"), std::string::npos);
  EXPECT_NE(text.find("b/wait"), std::string::npos);
  EXPECT_NE(text.find("2.0000"), std::string::npos);  // mean of a/pull
  EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Recorder, SeriesNamesSorted) {
  Recorder recorder;
  recorder.addSample("z", 1);
  recorder.addSample("a", 1);
  const auto names = recorder.seriesNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "z");
}

}  // namespace
}  // namespace edgesim::metrics
