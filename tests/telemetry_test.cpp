// Telemetry subsystem tests: striped-registry merge correctness under
// concurrent writers (run under `ctest -L concurrency`, which the CI TSan
// job builds with -fsanitize=thread), histogram bucket boundaries,
// Prometheus / JSON golden serialization, lintPrometheus accept/reject
// cases, the SLO watchdog trigger/no-trigger paths and the bounded
// Recorder / TraceRecorder buffers.
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/recorder.hpp"
#include "sim/simulation.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/slo_watchdog.hpp"
#include "telemetry/snapshot.hpp"
#include "trace/trace_recorder.hpp"

namespace edgesim::telemetry {
namespace {

using edgesim::trace::TraceRecorder;

// ---- striped writes ---------------------------------------------------------

TEST(CounterTest, MergesConcurrentStripedWriters) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(HistogramTest, MergesConcurrentStripedWriters) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  Histogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    // Distinct per-thread values so the merge also has to sum distinct
    // buckets, not just one hot cell.
    const double value = 0.001 * (t + 1);
    threads.emplace_back([&hist, value] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) hist.observe(value);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  // Sum of 10000 * (1+2+...+8) ms = 360 s, at nanosecond resolution.
  EXPECT_NEAR(hist.sum(), 360.0, 1e-3);
}

TEST(MetricsRegistryTest, ConcurrentWritersAndSnapshotsMergeExactly) {
  constexpr int kThreads = 6;
  constexpr std::uint64_t kPerThread = 5000;
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Handles resolve once; the loop is pure striped writes.
      Counter& mine =
          registry.counter("worker_ops_total", {{"worker", std::to_string(t)}});
      Counter& shared = registry.counter("ops_total");
      Histogram& hist = registry.histogram("op_seconds");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        mine.add();
        shared.add();
        hist.observe(1e-6);
      }
    });
  }
  // Snapshots while writers run must be safe (values are approximations).
  for (int i = 0; i < 50; ++i) {
    const TelemetrySnapshot mid = registry.snapshot(0.0);
    EXPECT_LE(mid.counterTotal("ops_total"), kThreads * kPerThread);
  }
  for (std::thread& thread : threads) thread.join();

  // Quiescent: the merge is exact.
  const TelemetrySnapshot snap = registry.snapshot(1.0);
  EXPECT_EQ(snap.counterValue("ops_total"), kThreads * kPerThread);
  EXPECT_EQ(snap.counterTotal("worker_ops_total"), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counterValue("worker_ops_total",
                                {{"worker", std::to_string(t)}}),
              kPerThread);
  }
  const SnapshotHistogram* hist = snap.findHistogram("op_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kThreads * kPerThread);
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.counter("c", {{"k", "v"}});
  Counter& b = registry.counter("c", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  // Same name, different labels = different series.
  EXPECT_NE(&a, &registry.counter("c", {{"k", "w"}}));
  EXPECT_NE(&a, &registry.counter("c"));
}

TEST(MetricsRegistryTest, SnapshotSequenceIncreases) {
  MetricsRegistry registry;
  const TelemetrySnapshot first = registry.snapshot(0.0);
  const TelemetrySnapshot second = registry.snapshot(0.5);
  EXPECT_EQ(second.sequence, first.sequence + 1);
  EXPECT_DOUBLE_EQ(second.simTimeSeconds, 0.5);
}

// ---- histogram buckets ------------------------------------------------------

TEST(HistogramTest, BucketBoundariesTileTheRange) {
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const double lower = Histogram::bucketLowerBound(i);
    const double upper = Histogram::bucketUpperBound(i);
    EXPECT_LT(lower, upper) << "bucket " << i;
    if (i + 1 < Histogram::kBuckets) {
      // Buckets tile: each upper bound is the next bucket's lower bound.
      EXPECT_DOUBLE_EQ(upper, Histogram::bucketLowerBound(i + 1));
    }
    // The exact lower bound and an interior point both map back to i.
    if (i > 0) {
      EXPECT_EQ(Histogram::bucketIndex(lower), i);
    }
    EXPECT_EQ(Histogram::bucketIndex((lower + upper) / 2.0), i);
  }
}

TEST(HistogramTest, BucketIndexClampsAndRejectsNonPositive) {
  EXPECT_EQ(Histogram::bucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::bucketIndex(-1.0), 0);
  EXPECT_EQ(Histogram::bucketIndex(std::nan("")), 0);
  EXPECT_EQ(Histogram::bucketIndex(1e-300), 0);   // below 2^-31 s
  EXPECT_EQ(Histogram::bucketIndex(1e9), Histogram::kBuckets - 1);
}

TEST(HistogramTest, KnownValuesLandInExpectedBuckets) {
  // 0.5 s = 2^-1 with zero mantissa: first sub-bucket of octave -1.
  const int octaveOfHalf = (-1 - Histogram::kMinExp) * Histogram::kSubBuckets;
  EXPECT_EQ(Histogram::bucketIndex(0.5), octaveOfHalf);
  EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(octaveOfHalf), 0.625);
  // 0.6 = 2^-1 * 1.2: sub-bucket floor((1.2 - 1) * 4) = 0, same as 0.5.
  EXPECT_EQ(Histogram::bucketIndex(0.6), octaveOfHalf);
  // 0.7 = 2^-1 * 1.4 -> sub-bucket 1.
  EXPECT_EQ(Histogram::bucketIndex(0.7), octaveOfHalf + 1);
  // 1.0 starts the octave 0 group.
  EXPECT_EQ(Histogram::bucketIndex(1.0),
            (0 - Histogram::kMinExp) * Histogram::kSubBuckets);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram hist;
  for (int i = 0; i < 99; ++i) hist.observe(0.001);  // ~1 ms
  hist.observe(1.0);                                 // one outlier
  // p50 sits in the 1 ms bucket; p100 in the 1 s bucket.
  const double p50 = hist.quantile(0.5);
  EXPECT_GE(p50, Histogram::bucketLowerBound(Histogram::bucketIndex(0.001)));
  EXPECT_LE(p50, Histogram::bucketUpperBound(Histogram::bucketIndex(0.001)));
  const double p100 = hist.quantile(1.0);
  EXPECT_GE(p100, 1.0);
  EXPECT_LE(p100, Histogram::bucketUpperBound(Histogram::bucketIndex(1.0)));
  Histogram empty;
  EXPECT_TRUE(std::isnan(empty.quantile(0.5)));
}

// ---- serialization goldens --------------------------------------------------

MetricsRegistry& goldenRegistry() {
  static MetricsRegistry registry;
  static bool once = [] {
    registry.counter("requests_total", {{"outcome", "ok"}}).add(2);
    registry.gauge("queue_depth").set(3);
    registry.histogram("latency_seconds").observe(0.5);
    return true;
  }();
  (void)once;
  return registry;
}

TEST(SnapshotTest, PrometheusGolden) {
  const TelemetrySnapshot snap = goldenRegistry().snapshot(1.5);
  const std::string expected =
      "# TYPE requests_total counter\n"
      "requests_total{outcome=\"ok\"} 2\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 3\n"
      "# TYPE latency_seconds histogram\n"
      "latency_seconds_bucket{le=\"0.625\"} 1\n"
      "latency_seconds_bucket{le=\"+Inf\"} 1\n"
      "latency_seconds_sum 0.5\n"
      "latency_seconds_count 1\n";
  EXPECT_EQ(snap.toPrometheus(), expected);
  EXPECT_TRUE(lintPrometheus(snap.toPrometheus()).ok());
}

TEST(SnapshotTest, JsonRoundTripsExactly) {
  const TelemetrySnapshot snap = goldenRegistry().snapshot(2.5);
  const std::string text = snap.toJson().dump(2);
  const Result<JsonValue> doc = JsonValue::parse(text);
  ASSERT_TRUE(doc.ok()) << doc.error().toString();
  const Result<TelemetrySnapshot> reread =
      TelemetrySnapshot::fromJson(doc.value());
  ASSERT_TRUE(reread.ok()) << reread.error().toString();
  const TelemetrySnapshot& got = reread.value();

  EXPECT_EQ(got.sequence, snap.sequence);
  EXPECT_DOUBLE_EQ(got.simTimeSeconds, 2.5);
  ASSERT_EQ(got.counters.size(), 1u);
  EXPECT_EQ(got.counters[0].name, "requests_total");
  EXPECT_EQ(got.counters[0].labels, Labels({{"outcome", "ok"}}));
  EXPECT_EQ(got.counters[0].value, 2u);
  ASSERT_EQ(got.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(got.gauges[0].value, 3.0);
  ASSERT_EQ(got.histograms.size(), 1u);
  EXPECT_EQ(got.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(got.histograms[0].sum, 0.5);
  ASSERT_EQ(got.histograms[0].buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(got.histograms[0].buckets[0].upperBound, 0.625);
  EXPECT_EQ(got.histograms[0].buckets[0].cumulative, 1u);
}

TEST(SnapshotTest, FromJsonRejectsWrongSchema) {
  const auto doc = JsonValue::parse("{\"schema\": \"other\"}");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(TelemetrySnapshot::fromJson(doc.value()).ok());
}

TEST(SnapshotTest, GaugeFnIsPolledAtSnapshotTime) {
  MetricsRegistry registry;
  double dropped = 7.0;
  registry.gaugeFn("dropped_events", {}, [&dropped] { return dropped; });
  EXPECT_DOUBLE_EQ(registry.snapshot(0.0).findGauge("dropped_events")->value,
                   7.0);
  dropped = 9.0;
  EXPECT_DOUBLE_EQ(registry.snapshot(0.0).findGauge("dropped_events")->value,
                   9.0);
  // Re-registering replaces the callback.
  registry.gaugeFn("dropped_events", {}, [] { return 1.0; });
  EXPECT_DOUBLE_EQ(registry.snapshot(0.0).findGauge("dropped_events")->value,
                   1.0);
}

// ---- Prometheus lint --------------------------------------------------------

TEST(LintPrometheusTest, RejectsMalformedExpositions) {
  // Sample before its TYPE declaration.
  EXPECT_FALSE(lintPrometheus("a_total 1\n# TYPE a_total counter\n").ok());
  // Invalid metric name.
  EXPECT_FALSE(lintPrometheus("# TYPE 9bad counter\n").ok());
  // Unknown type.
  EXPECT_FALSE(lintPrometheus("# TYPE a_total widget\n").ok());
  // Unterminated label value.
  EXPECT_FALSE(
      lintPrometheus("# TYPE a counter\na{k=\"v} 1\n").ok());
  // Non-numeric sample value.
  EXPECT_FALSE(lintPrometheus("# TYPE a counter\na banana\n").ok());
  // Negative counter.
  EXPECT_FALSE(lintPrometheus("# TYPE a counter\na -1\n").ok());
  // Histogram: le bounds must strictly increase.
  EXPECT_FALSE(lintPrometheus("# TYPE h histogram\n"
                              "h_bucket{le=\"1\"} 1\n"
                              "h_bucket{le=\"1\"} 2\n"
                              "h_bucket{le=\"+Inf\"} 2\n"
                              "h_sum 1\nh_count 2\n")
                   .ok());
  // Histogram: cumulative counts must not decrease.
  EXPECT_FALSE(lintPrometheus("# TYPE h histogram\n"
                              "h_bucket{le=\"1\"} 2\n"
                              "h_bucket{le=\"2\"} 1\n"
                              "h_bucket{le=\"+Inf\"} 2\n"
                              "h_sum 1\nh_count 2\n")
                   .ok());
  // Histogram: +Inf bucket required.
  EXPECT_FALSE(lintPrometheus("# TYPE h histogram\n"
                              "h_bucket{le=\"1\"} 1\n"
                              "h_sum 1\nh_count 1\n")
                   .ok());
  // Histogram: _count must equal the +Inf bucket.
  EXPECT_FALSE(lintPrometheus("# TYPE h histogram\n"
                              "h_bucket{le=\"+Inf\"} 2\n"
                              "h_sum 1\nh_count 3\n")
                   .ok());
}

TEST(LintPrometheusTest, AcceptsWellFormedExposition) {
  EXPECT_TRUE(lintPrometheus("# TYPE a_total counter\n"
                             "a_total{k=\"v\",q=\"x\\\"y\"} 1\n"
                             "# TYPE g gauge\n"
                             "g 2.5\n"
                             "# TYPE h histogram\n"
                             "h_bucket{le=\"0.5\"} 1\n"
                             "h_bucket{le=\"+Inf\"} 3\n"
                             "h_sum 1.25\n"
                             "h_count 3\n")
                  .ok());
  EXPECT_TRUE(lintPrometheus("").ok());
}

// ---- SLO watchdog -----------------------------------------------------------

TEST(SloWatchdogTest, LatencyBreachCapturesWorstRequestSpans) {
  Simulation sim;
  MetricsRegistry registry;
  TraceRecorder trace;
  SloWatchdog watchdog(sim, registry, &trace);

  SloBudget budget;
  budget.name = "resolve-p95";
  budget.service = "nginx";
  budget.histogram = "edgesim_resolve_seconds";
  budget.labels = {{"path", "cold"}};
  budget.quantile = 0.95;
  budget.latencyBudgetSeconds = 0.1;
  budget.minWindowSamples = 3;
  watchdog.addBudget(budget);

  Histogram& hist =
      registry.histogram("edgesim_resolve_seconds", {{"path", "cold"}});
  const trace::RequestId rid = trace.newRequest();
  trace.completeSpan(rid, "resolve", "controller", SimTime::millis(100),
                     SimTime::millis(900));
  for (int i = 0; i < 10; ++i) hist.observe(0.8);
  watchdog.observeRequest("nginx", 0.8, rid);

  EXPECT_EQ(watchdog.evaluate(), 1u);
  ASSERT_EQ(watchdog.breaches().size(), 1u);
  const SloBreach& breach = watchdog.breaches()[0];
  EXPECT_EQ(breach.budget, "resolve-p95");
  EXPECT_EQ(breach.kind, "latency");
  EXPECT_GT(breach.observed, 0.1);
  EXPECT_EQ(breach.windowSamples, 10u);
  EXPECT_EQ(breach.worstRequest, rid);
  ASSERT_EQ(breach.worstSpans.size(), 1u);
  EXPECT_EQ(breach.worstSpans[0].name, "resolve");

  // The breach is visible in the registry and as a trace instant.
  EXPECT_EQ(registry.snapshot(0.0).counterValue(
                "edgesim_slo_breaches_total", {{"budget", "resolve-p95"}}),
            1u);
  bool sawInstant = false;
  for (const trace::TraceInstant& instant : trace.instants()) {
    sawInstant |= instant.name == "slo-breach" && instant.request == rid;
  }
  EXPECT_TRUE(sawInstant);

  // Windowed evaluation: no new observations, no new breach.
  EXPECT_EQ(watchdog.evaluate(), 0u);
  EXPECT_EQ(watchdog.breaches().size(), 1u);
}

TEST(SloWatchdogTest, NoBreachUnderBudgetOrBelowMinSamples) {
  Simulation sim;
  MetricsRegistry registry;
  SloWatchdog watchdog(sim, registry);

  SloBudget budget;
  budget.name = "fast";
  budget.histogram = "h";
  budget.quantile = 0.95;
  budget.latencyBudgetSeconds = 0.5;
  budget.minWindowSamples = 5;
  watchdog.addBudget(budget);

  Histogram& hist = registry.histogram("h");
  for (int i = 0; i < 100; ++i) hist.observe(0.01);  // well under budget
  EXPECT_EQ(watchdog.evaluate(), 0u);

  // Over budget but below the minimum window size: still no breach.
  hist.observe(10.0);
  hist.observe(10.0);
  EXPECT_EQ(watchdog.evaluate(), 0u);
  EXPECT_TRUE(watchdog.breaches().empty());
}

TEST(SloWatchdogTest, ErrorBudgetUsesWindowedRatio) {
  Simulation sim;
  MetricsRegistry registry;
  SloWatchdog watchdog(sim, registry);

  SloBudget budget;
  budget.name = "errors";
  budget.errorCounter = "errs_total";
  budget.totalCounter = "reqs_total";
  budget.maxErrorRatio = 0.2;
  budget.minWindowSamples = 4;
  watchdog.addBudget(budget);

  Counter& errors = registry.counter("errs_total");
  Counter& total = registry.counter("reqs_total");
  total.add(10);
  errors.add(5);  // ratio 0.5 > 0.2
  EXPECT_EQ(watchdog.evaluate(), 1u);
  ASSERT_EQ(watchdog.breaches().size(), 1u);
  EXPECT_EQ(watchdog.breaches()[0].kind, "errors");
  EXPECT_DOUBLE_EQ(watchdog.breaches()[0].observed, 0.5);

  // Next window is healthy: 1 error in 10 is under the ratio.
  total.add(10);
  errors.add(1);
  EXPECT_EQ(watchdog.evaluate(), 0u);
  EXPECT_EQ(watchdog.breaches().size(), 1u);
}

// ---- bounded buffers --------------------------------------------------------

TEST(RecorderCapTest, DropsStorageOverCapAndCountsDrops) {
  metrics::Recorder recorder;
  recorder.setCapacity(/*maxRecords=*/2, /*maxSamplesPerSeries=*/3);
  for (int i = 0; i < 5; ++i) {
    recorder.add({"s", SimTime::zero(), SimTime::millis(10), /*success=*/true,
                  0});
  }
  // Storage is bounded...
  EXPECT_EQ(recorder.totalRecords(), 2u);
  ASSERT_NE(recorder.series("s"), nullptr);
  EXPECT_EQ(recorder.series("s")->count(), 3u);
  // ...and every over-cap event is tallied (3 record drops, the worst of
  // the per-event record/sample drops counts once per event).
  EXPECT_EQ(recorder.droppedEvents(), 3u);

  // Failures still count even when storage is dropped.
  recorder.add({"s", SimTime::zero(), SimTime::millis(10), /*success=*/false,
                0});
  EXPECT_EQ(recorder.failureCount(), 1u);
  EXPECT_EQ(recorder.totalRecords(), 2u);

  recorder.addSample("t", 1.0);
  recorder.addSample("t", 2.0);
  recorder.addSample("t", 3.0);
  recorder.addSample("t", 4.0);
  EXPECT_EQ(recorder.series("t")->count(), 3u);
}

TEST(RecorderCapTest, UnboundedByDefault) {
  metrics::Recorder recorder;
  for (int i = 0; i < 100; ++i) {
    recorder.add({"s", SimTime::zero(), SimTime::millis(1), true, 0});
  }
  EXPECT_EQ(recorder.totalRecords(), 100u);
  EXPECT_EQ(recorder.droppedEvents(), 0u);
}

TEST(TraceRecorderCapTest, DropsEventsOverCapAndCountsDrops) {
  TraceRecorder trace;
  trace.setCapacity(3);
  const trace::RequestId rid = trace.newRequest();
  EXPECT_NE(trace.beginSpan(rid, "a", "test", SimTime::zero()), 0u);
  EXPECT_NE(trace.beginSpan(rid, "b", "test", SimTime::zero()), 0u);
  trace.instant(rid, "c", "test", SimTime::zero());
  // Cap reached: spans return 0, instants vanish, drops are counted.
  EXPECT_EQ(trace.beginSpan(rid, "d", "test", SimTime::zero()), 0u);
  trace.instant(rid, "e", "test", SimTime::zero());
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.instants().size(), 1u);
  EXPECT_EQ(trace.droppedEvents(), 2u);
}

TEST(TraceRecorderCapTest, DisabledRecorderDoesNotCountDrops) {
  TraceRecorder trace;
  trace.setCapacity(1);
  trace.setEnabled(false);
  const trace::RequestId rid = trace.newRequest();
  for (int i = 0; i < 5; ++i) {
    trace.instant(rid, "x", "test", SimTime::zero());
  }
  EXPECT_EQ(trace.droppedEvents(), 0u);
}

}  // namespace
}  // namespace edgesim::telemetry
