// FaultPlan unit tests: deterministic scheduling (same seed => same
// injected-fault schedule), per-site / per-target spec matching, one-shot
// vs persistent faults, skipFirst warm-up, stall-only faults, and the
// kLinkDown spec selection used by Network::scheduleLinkFaults.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/time.hpp"

namespace edgesim::fault {
namespace {

using namespace timeliterals;

FaultSpec rpcFault(std::string target, double probability = 1.0) {
  FaultSpec spec;
  spec.site = FaultSite::kClusterRpc;
  spec.target = std::move(target);
  spec.probability = probability;
  return spec;
}

TEST(FaultPlan, SameSeedProducesSameSchedule) {
  const auto drive = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.add(rpcFault("docker-egs", 0.5));
    std::vector<bool> triggered;
    for (int i = 0; i < 64; ++i) {
      triggered.push_back(
          plan.evaluate(FaultSite::kClusterRpc, "docker-egs/pull").has_value());
    }
    return triggered;
  };
  const auto a = drive(42);
  const auto b = drive(42);
  EXPECT_EQ(a, b);
  // Sanity: p=0.5 over 64 occurrences triggers at least once either way.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
}

TEST(FaultPlan, DifferentSeedsProduceDifferentSchedules) {
  const auto drive = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.add(rpcFault("", 0.5));
    std::vector<bool> triggered;
    for (int i = 0; i < 64; ++i) {
      triggered.push_back(
          plan.evaluate(FaultSite::kClusterRpc, "x").has_value());
    }
    return triggered;
  };
  EXPECT_NE(drive(1), drive(2));
}

TEST(FaultPlan, ExactAndPrefixTargetMatching) {
  FaultPlan plan(7);
  plan.add(rpcFault("docker-egs"));

  EXPECT_TRUE(plan.evaluate(FaultSite::kClusterRpc, "docker-egs").has_value());
  // Prefix refinement only across a '/' boundary.
  EXPECT_TRUE(
      plan.evaluate(FaultSite::kClusterRpc, "docker-egs/pull").has_value());
  EXPECT_FALSE(
      plan.evaluate(FaultSite::kClusterRpc, "docker-egs2").has_value());
  EXPECT_FALSE(plan.evaluate(FaultSite::kClusterRpc, "k8s-egs").has_value());
  // Wrong site never matches, whatever the target.
  EXPECT_FALSE(
      plan.evaluate(FaultSite::kRegistryPull, "docker-egs").has_value());
}

TEST(FaultPlan, EmptyTargetMatchesEverything) {
  FaultPlan plan(7);
  plan.add(rpcFault(""));
  EXPECT_TRUE(plan.evaluate(FaultSite::kClusterRpc, "a").has_value());
  EXPECT_TRUE(plan.evaluate(FaultSite::kClusterRpc, "b/c").has_value());
  EXPECT_TRUE(plan.evaluate(FaultSite::kClusterRpc, "").has_value());
}

TEST(FaultPlan, OneShotTriggersExactlyOnce) {
  FaultPlan plan(7);
  FaultSpec spec = rpcFault("");
  spec.maxTriggers = 1;
  plan.add(spec);
  EXPECT_TRUE(plan.evaluate(FaultSite::kClusterRpc, "x").has_value());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(plan.evaluate(FaultSite::kClusterRpc, "x").has_value());
  }
  EXPECT_EQ(plan.triggerCount(), 1u);
}

TEST(FaultPlan, PersistentFaultKeepsTriggering) {
  FaultPlan plan(7);
  plan.add(rpcFault(""));  // maxTriggers = -1
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(plan.evaluate(FaultSite::kClusterRpc, "x").has_value());
  }
  EXPECT_EQ(plan.triggerCount(), 10u);
}

TEST(FaultPlan, SkipFirstLetsEarlyOccurrencesPass) {
  FaultPlan plan(7);
  FaultSpec spec = rpcFault("");
  spec.skipFirst = 3;
  plan.add(spec);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(plan.evaluate(FaultSite::kClusterRpc, "x").has_value());
  }
  EXPECT_TRUE(plan.evaluate(FaultSite::kClusterRpc, "x").has_value());
}

TEST(FaultPlan, StallOnlyFaultDoesNotFail) {
  FaultPlan plan(7);
  FaultSpec spec = rpcFault("");
  spec.code = Errc::kOk;  // stall without failing
  spec.stall = 500_ms;
  plan.add(spec);
  const auto injected = plan.evaluate(FaultSite::kClusterRpc, "x");
  ASSERT_TRUE(injected.has_value());
  EXPECT_FALSE(injected->fail);
  EXPECT_EQ(injected->stall, 500_ms);
}

TEST(FaultPlan, FailingFaultCarriesCodeAndAnnotatedMessage) {
  FaultPlan plan(7);
  FaultSpec spec = rpcFault("docker-egs");
  spec.code = Errc::kInternal;
  spec.message = "boom";
  spec.stall = 50_ms;
  plan.add(spec);
  const auto injected = plan.evaluate(FaultSite::kClusterRpc, "docker-egs");
  ASSERT_TRUE(injected.has_value());
  EXPECT_TRUE(injected->fail);
  EXPECT_EQ(injected->error.code, Errc::kInternal);
  EXPECT_NE(injected->error.message.find("boom"), std::string::npos);
  EXPECT_NE(injected->error.message.find("docker-egs"), std::string::npos);
  EXPECT_EQ(injected->stall, 50_ms);
}

TEST(FaultPlan, OccurrenceCountersAndEventLog) {
  FaultPlan plan(7);
  plan.add(rpcFault("docker-egs"));
  (void)plan.evaluate(FaultSite::kClusterRpc, "docker-egs/pull");
  (void)plan.evaluate(FaultSite::kClusterRpc, "k8s-egs/pull");  // no match
  (void)plan.evaluate(FaultSite::kRegistryPull, "egs");

  EXPECT_EQ(plan.occurrences(FaultSite::kClusterRpc), 2u);
  EXPECT_EQ(plan.occurrences(FaultSite::kRegistryPull), 1u);
  EXPECT_EQ(plan.occurrences(FaultSite::kContainerCreate), 0u);
  ASSERT_EQ(plan.events().size(), 1u);
  EXPECT_EQ(plan.events()[0].site, FaultSite::kClusterRpc);
  EXPECT_EQ(plan.events()[0].target, "docker-egs/pull");
  EXPECT_TRUE(plan.events()[0].failed);
}

TEST(FaultPlan, LinkFaultsSelectedByLabelAndExcludedFromEvaluate) {
  FaultPlan plan(7);
  FaultSpec down;
  down.site = FaultSite::kLinkDown;
  down.target = "egs-uplink";
  down.at = 10_s;
  down.duration = 2_s;
  plan.add(down);
  plan.add(rpcFault("egs-uplink"));

  // kLinkDown specs are time-scripted, never occurrence-evaluated: the
  // evaluate() call only sees the kClusterRpc spec.
  const auto injected = plan.evaluate(FaultSite::kClusterRpc, "egs-uplink");
  ASSERT_TRUE(injected.has_value());
  EXPECT_EQ(injected->specIndex, 1u);

  const auto faults = plan.linkFaults("egs-uplink");
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0]->at, 10_s);
  EXPECT_EQ(faults[0]->duration, 2_s);
  EXPECT_TRUE(plan.linkFaults("other-link").empty());
}

}  // namespace
}  // namespace edgesim::fault
