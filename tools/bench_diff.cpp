// bench_diff -- compare two BENCH_<name>.json reports and fail on
// regression.  The CI Release job runs this against results/baselines/.
//
//   $ bench_diff baseline.json candidate.json [--tolerance 0.10]
//                [--median-only]
//
// --median-only skips the p95 gate: wall-clock benches (as opposed to
// sim-time ones) have noisy tails, and gating their p95 makes CI flaky.
//
// Exit status: 0 when the candidate is within tolerance of the baseline,
// 1 when any series regressed (median beyond tolerance, p95 beyond twice
// the tolerance unless --median-only, sample-count mismatch, or a baseline
// series is missing), 2 on usage or I/O errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "metrics/bench_report.hpp"

using edgesim::metrics::BenchReport;
using edgesim::metrics::CompareOptions;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <candidate.json> "
               "[--tolerance <fraction>] [--median-only]\n"
               "       (e.g. --tolerance 0.10 allows a 10%% slowdown;\n"
               "        --median-only skips the noisy p95 gate)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baselinePath;
  std::string candidatePath;
  CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      options.tolerance = std::atof(argv[++i]);
      if (options.tolerance <= 0.0) {
        std::fprintf(stderr, "bench_diff: invalid tolerance '%s'\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--median-only") == 0) {
      options.comparePercentile = false;
    } else if (baselinePath.empty()) {
      baselinePath = argv[i];
    } else if (candidatePath.empty()) {
      candidatePath = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (baselinePath.empty() || candidatePath.empty()) return usage(argv[0]);

  const auto baseline = BenchReport::fromFile(baselinePath);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_diff: cannot read baseline %s: %s\n",
                 baselinePath.c_str(),
                 baseline.error().toString().c_str());
    return 2;
  }
  const auto candidate = BenchReport::fromFile(candidatePath);
  if (!candidate.ok()) {
    std::fprintf(stderr, "bench_diff: cannot read candidate %s: %s\n",
                 candidatePath.c_str(),
                 candidate.error().toString().c_str());
    return 2;
  }

  const auto result =
      compareReports(baseline.value(), candidate.value(), options);

  std::printf("bench_diff: %s vs %s (tolerance %.0f%%): "
              "%zu series compared\n",
              baselinePath.c_str(), candidatePath.c_str(),
              options.tolerance * 100.0, result.seriesCompared);
  for (const auto& name : result.improvedSeries) {
    std::printf("  improved:  %s\n", name.c_str());
  }
  for (const auto& name : result.missingSeries) {
    std::printf("  MISSING:   %s (in baseline, absent in candidate)\n",
                name.c_str());
  }
  for (const auto& regression : result.regressions) {
    std::printf("  REGRESSED: %s\n", regression.toString().c_str());
  }

  if (!result.ok()) {
    std::printf("FAIL: %zu regression(s), %zu missing series\n",
                result.regressions.size(), result.missingSeries.size());
    return 1;
  }
  std::printf("OK: no regressions beyond tolerance\n");
  return 0;
}
