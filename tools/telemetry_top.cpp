// telemetry_top: terminal viewer for edgesim telemetry snapshots.
//
// Usage:
//   telemetry_top [dir] [--interval <seconds>] [--once]
//   telemetry_top --lint <file.prom>...
//
// Top mode tails a snapshot directory (as written by telemetry::SnapshotWriter
// or `bench_telemetry_fig16`): every refresh it picks the highest-sequence
// snapshot_*.json, parses it and renders request / shard / lane / phase /
// overload-governor / SLO health tables.  `--once` renders a single frame and exits (useful in CI or
// for post-mortem inspection of a finished run).
//
// Lint mode validates Prometheus text exposition files against
// telemetry::lintPrometheus and exits nonzero on the first malformed file --
// CI runs this over the .prom snapshots a bench produced.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/snapshot.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace edgesim;
using namespace edgesim::telemetry;

namespace {

std::string readFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string labelValue(const Labels& labels, const std::string& key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return std::string();
}

std::string fmtQuantileMs(const SnapshotHistogram& hist, double q) {
  const double value = hist.quantile(q);
  if (std::isnan(value)) return "-";
  return strprintf("%.2f", value * 1e3);
}

std::string fmtCount(std::uint64_t value) {
  return std::to_string(static_cast<unsigned long long>(value));
}

/// Highest-sequence snapshot_NNNNNN.json in `dir`; filenames are
/// zero-padded, so the lexicographic max is the numeric max.
std::optional<std::filesystem::path> findLatest(const std::string& dir) {
  std::optional<std::filesystem::path> best;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("snapshot_") || !name.ends_with(".json")) continue;
    if (!best || best->filename().string() < name) best = entry.path();
  }
  return best;
}

void renderRequests(const TelemetrySnapshot& snap, std::string& out) {
  Table outcomes({"outcome", "requests"});
  for (const auto& counter : snap.counters) {
    if (counter.name != "edgesim_requests_total") continue;
    outcomes.addRow({labelValue(counter.labels, "outcome"),
                     fmtCount(counter.value)});
  }
  Table resolve({"path", "service", "count", "p50 (ms)", "p95 (ms)"});
  for (const auto& hist : snap.histograms) {
    if (hist.name != "edgesim_resolve_seconds") continue;
    const std::string service = labelValue(hist.labels, "service");
    resolve.addRow({labelValue(hist.labels, "path"),
                    service.empty() ? "-" : service, fmtCount(hist.count),
                    fmtQuantileMs(hist, 0.5), fmtQuantileMs(hist, 0.95)});
  }
  if (outcomes.rowCount() + resolve.rowCount() == 0) return;
  out += "requests\n";
  if (outcomes.rowCount() > 0) out += outcomes.render();
  if (resolve.rowCount() > 0) out += resolve.render();
  out += "\n";
}

void renderShards(const TelemetrySnapshot& snap, std::string& out) {
  struct ShardRow {
    std::uint64_t hits = 0, misses = 0, evictions = 0;
    double flows = 0.0;
  };
  std::map<std::string, ShardRow> shards;  // ordered by shard id string
  for (const auto& counter : snap.counters) {
    const std::string shard = labelValue(counter.labels, "shard");
    if (shard.empty()) continue;
    if (counter.name == "edgesim_flow_memory_lookups_total") {
      if (labelValue(counter.labels, "result") == "hit") {
        shards[shard].hits += counter.value;
      } else {
        shards[shard].misses += counter.value;
      }
    } else if (counter.name == "edgesim_flow_memory_evictions_total") {
      shards[shard].evictions += counter.value;
    }
  }
  for (const auto& gauge : snap.gauges) {
    if (gauge.name != "edgesim_flow_memory_flows") continue;
    shards[labelValue(gauge.labels, "shard")].flows = gauge.value;
  }
  if (shards.empty()) return;
  Table table({"shard", "flows", "hits", "misses", "evictions"});
  for (const auto& [shard, row] : shards) {
    table.addRow({shard, strprintf("%.0f", row.flows), fmtCount(row.hits),
                  fmtCount(row.misses), fmtCount(row.evictions)});
  }
  out += "flow memory shards\n" + table.render() + "\n";
}

void renderLanes(const TelemetrySnapshot& snap, std::string& out) {
  const auto* depth = snap.findGauge("edgesim_lane_queue_depth");
  const auto* wait = snap.findHistogram("edgesim_lane_wait_seconds");
  const auto* recorderDrops = snap.findGauge("edgesim_recorder_dropped_events");
  const auto* traceDrops = snap.findGauge("edgesim_trace_dropped_events");
  if (depth == nullptr && wait == nullptr) return;
  Table table({"in flight", "tasks", "wait p50 (ms)", "wait p95 (ms)",
               "recorder drops", "trace drops"});
  table.addRow({depth != nullptr ? strprintf("%.0f", depth->value) : "-",
                wait != nullptr ? fmtCount(wait->count) : "-",
                wait != nullptr ? fmtQuantileMs(*wait, 0.5) : "-",
                wait != nullptr ? fmtQuantileMs(*wait, 0.95) : "-",
                recorderDrops != nullptr
                    ? strprintf("%.0f", recorderDrops->value)
                    : "-",
                traceDrops != nullptr ? strprintf("%.0f", traceDrops->value)
                                      : "-"});
  out += "controller lanes\n" + table.render() + "\n";
}

void renderPhases(const TelemetrySnapshot& snap, std::string& out) {
  Table table({"cluster", "phase", "count", "p50 (ms)", "p95 (ms)"});
  for (const auto& hist : snap.histograms) {
    if (hist.name != "edgesim_deploy_phase_seconds") continue;
    table.addRow({labelValue(hist.labels, "cluster"),
                  labelValue(hist.labels, "phase"), fmtCount(hist.count),
                  fmtQuantileMs(hist, 0.5), fmtQuantileMs(hist, 0.95)});
  }
  if (table.rowCount() == 0) return;
  out += "deployment phases\n" + table.render();
  out += strprintf(
      "deploys %llu  retries %llu  fallbacks %llu  quarantines %llu\n\n",
      static_cast<unsigned long long>(
          snap.counterTotal("edgesim_deploys_total")),
      static_cast<unsigned long long>(
          snap.counterTotal("edgesim_deploy_retries_total")),
      static_cast<unsigned long long>(
          snap.counterTotal("edgesim_deploy_fallbacks_total")),
      static_cast<unsigned long long>(
          snap.counterTotal("edgesim_deploy_quarantines_total")));
}

void renderOverload(const TelemetrySnapshot& snap, std::string& out) {
  Table sheds({"shed reason", "requests"});
  for (const auto& counter : snap.counters) {
    if (counter.name != "edgesim_shed_total") continue;
    sheds.addRow({labelValue(counter.labels, "reason"),
                  fmtCount(counter.value)});
  }
  Table breakers({"cluster", "state", "opens", "short circuits"});
  struct BreakerRow {
    double state = 0.0;
    std::uint64_t opens = 0, shortCircuits = 0;
  };
  std::map<std::string, BreakerRow> byCluster;
  for (const auto& gauge : snap.gauges) {
    if (gauge.name != "edgesim_breaker_state") continue;
    byCluster[labelValue(gauge.labels, "cluster")].state = gauge.value;
  }
  for (const auto& counter : snap.counters) {
    if (counter.name == "edgesim_breaker_transitions_total" &&
        labelValue(counter.labels, "to") == "open") {
      byCluster[labelValue(counter.labels, "cluster")].opens += counter.value;
    } else if (counter.name == "edgesim_breaker_short_circuits_total") {
      byCluster[labelValue(counter.labels, "cluster")].shortCircuits +=
          counter.value;
    }
  }
  for (const auto& [cluster, row] : byCluster) {
    const char* state = row.state >= 2.0   ? "half-open"
                        : row.state >= 1.0 ? "OPEN"
                                           : "closed";
    breakers.addRow({cluster, state, fmtCount(row.opens),
                     fmtCount(row.shortCircuits)});
  }
  const auto* brownout = snap.findGauge("edgesim_brownout_active");
  if (sheds.rowCount() + breakers.rowCount() == 0 && brownout == nullptr) {
    return;
  }
  out += "overload governor\n";
  if (sheds.rowCount() > 0) out += sheds.render();
  if (breakers.rowCount() > 0) out += breakers.render();
  out += strprintf(
      "brownout %s  brownout redirects %llu  deploy tokens in use %.0f\n\n",
      brownout != nullptr && brownout->value >= 1.0 ? "ACTIVE" : "off",
      static_cast<unsigned long long>(
          snap.counterTotal("edgesim_brownout_redirects_total")),
      snap.findGauge("edgesim_deploy_tokens_in_use") != nullptr
          ? snap.findGauge("edgesim_deploy_tokens_in_use")->value
          : 0.0);
}

void renderHandovers(const TelemetrySnapshot& snap, std::string& out) {
  Table table({"outcome", "handovers"});
  for (const auto& counter : snap.counters) {
    if (counter.name != "edgesim_handovers_total") continue;
    table.addRow({labelValue(counter.labels, "outcome"),
                  fmtCount(counter.value)});
  }
  const auto* latency = snap.findHistogram("edgesim_handover_latency_seconds");
  const auto* gap =
      snap.findHistogram("edgesim_handover_continuity_gap_seconds");
  // The series register lazily on the first handover: nothing to show for
  // a mobility-free run.
  if (table.rowCount() == 0 && latency == nullptr && gap == nullptr) return;
  out += "mobility handovers\n";
  if (table.rowCount() > 0) out += table.render();
  Table timings({"metric", "count", "p50 (ms)", "p95 (ms)"});
  if (latency != nullptr) {
    timings.addRow({"latency", fmtCount(latency->count),
                    fmtQuantileMs(*latency, 0.5),
                    fmtQuantileMs(*latency, 0.95)});
  }
  if (gap != nullptr) {
    timings.addRow({"continuity gap", fmtCount(gap->count),
                    fmtQuantileMs(*gap, 0.5), fmtQuantileMs(*gap, 0.95)});
  }
  if (timings.rowCount() > 0) out += timings.render();
  out += "\n";
}

void renderControlChannel(const TelemetrySnapshot& snap, std::string& out) {
  // Per-switch channel health: drops by direction, restarts, buffer
  // evictions.  All of these register lazily on the first fault, so a
  // clean run renders nothing.
  struct SwitchRow {
    std::uint64_t dropsC2s = 0, dropsS2c = 0, restarts = 0, evictions = 0;
  };
  std::map<std::string, SwitchRow> bySwitch;
  for (const auto& counter : snap.counters) {
    const std::string sw = labelValue(counter.labels, "switch");
    if (sw.empty()) continue;
    if (counter.name == "edgesim_ctrl_channel_dropped_total") {
      if (labelValue(counter.labels, "direction") == "c2s") {
        bySwitch[sw].dropsC2s += counter.value;
      } else {
        bySwitch[sw].dropsS2c += counter.value;
      }
    } else if (counter.name == "edgesim_switch_restarts_total") {
      bySwitch[sw].restarts += counter.value;
    } else if (counter.name == "edgesim_switch_buffer_evictions_total") {
      bySwitch[sw].evictions += counter.value;
    }
  }
  Table switches({"switch", "drops c2s", "drops s2c", "restarts",
                  "buffer evictions"});
  for (const auto& [sw, row] : bySwitch) {
    switches.addRow({sw, fmtCount(row.dropsC2s), fmtCount(row.dropsS2c),
                     fmtCount(row.restarts), fmtCount(row.evictions)});
  }

  // Acked-install state machine: acked vs timed out, retries, failovers.
  std::uint64_t acked = 0, timedOut = 0;
  for (const auto& counter : snap.counters) {
    if (counter.name != "edgesim_ctrl_channel_acks_total") continue;
    if (labelValue(counter.labels, "result") == "acked") {
      acked += counter.value;
    } else {
      timedOut += counter.value;
    }
  }
  const auto retries = snap.counterTotal("edgesim_ctrl_channel_retries_total");
  const auto failovers =
      snap.counterTotal("edgesim_ctrl_channel_failovers_total");

  // Anti-entropy sweeps: drift found/repaired plus sweep latency tail.
  const auto sweeps = snap.counterTotal("edgesim_reconcile_sweeps_total");
  const auto* sweepHist = snap.findHistogram("edgesim_reconcile_sweep_seconds");
  const bool haveAcks = acked + timedOut + retries + failovers > 0;
  if (switches.rowCount() == 0 && !haveAcks && sweeps == 0) return;

  out += "control channel\n";
  if (switches.rowCount() > 0) out += switches.render();
  if (haveAcks) {
    out += strprintf("flowmods acked %llu  timed out %llu  retries %llu  "
                     "failovers %llu\n",
                     static_cast<unsigned long long>(acked),
                     static_cast<unsigned long long>(timedOut),
                     static_cast<unsigned long long>(retries),
                     static_cast<unsigned long long>(failovers));
  }
  if (sweeps > 0) {
    std::uint64_t missing = 0, orphans = 0;
    for (const auto& counter : snap.counters) {
      if (counter.name != "edgesim_reconcile_drift_detected_total") continue;
      if (labelValue(counter.labels, "kind") == "missing") {
        missing += counter.value;
      } else {
        orphans += counter.value;
      }
    }
    out += strprintf(
        "reconcile sweeps %llu  drift missing %llu  orphans %llu  "
        "reinstalled %llu  deleted %llu  resynthesized %llu  "
        "stats timeouts %llu  sweep p99 %s ms\n",
        static_cast<unsigned long long>(sweeps),
        static_cast<unsigned long long>(missing),
        static_cast<unsigned long long>(orphans),
        static_cast<unsigned long long>(
            snap.counterTotal("edgesim_reconcile_rules_reinstalled_total")),
        static_cast<unsigned long long>(
            snap.counterTotal("edgesim_reconcile_orphans_deleted_total")),
        static_cast<unsigned long long>(
            snap.counterTotal("edgesim_reconcile_flow_removed_resynth_total")),
        static_cast<unsigned long long>(
            snap.counterTotal("edgesim_reconcile_stats_timeouts_total")),
        sweepHist != nullptr ? fmtQuantileMs(*sweepHist, 0.99).c_str() : "-");
  }
  out += "\n";
}

void renderSlo(const TelemetrySnapshot& snap, std::string& out) {
  Table table({"budget", "breaches"});
  for (const auto& counter : snap.counters) {
    if (counter.name != "edgesim_slo_breaches_total") continue;
    table.addRow({labelValue(counter.labels, "budget"),
                  fmtCount(counter.value)});
  }
  if (table.rowCount() == 0) return;
  out += "SLO budgets\n" + table.render() + "\n";
}

std::string renderFrame(const TelemetrySnapshot& snap,
                        const std::filesystem::path& path) {
  std::string out = strprintf("telemetry_top -- %s  (seq %llu, sim t=%.1fs)\n\n",
                              path.string().c_str(),
                              static_cast<unsigned long long>(snap.sequence),
                              snap.simTimeSeconds);
  renderRequests(snap, out);
  renderShards(snap, out);
  renderLanes(snap, out);
  renderPhases(snap, out);
  renderOverload(snap, out);
  renderHandovers(snap, out);
  renderControlChannel(snap, out);
  renderSlo(snap, out);
  return out;
}

int runLint(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "telemetry_top --lint: no files given\n");
    return 2;
  }
  int rc = 0;
  for (const auto& file : files) {
    if (!std::filesystem::exists(file)) {
      std::fprintf(stderr, "%s: no such file\n", file.c_str());
      rc = 1;
      continue;
    }
    const Status status = lintPrometheus(readFile(file));
    if (status.ok()) {
      std::printf("%s: OK\n", file.c_str());
    } else {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   status.error().toString().c_str());
      rc = 1;
    }
  }
  return rc;
}

int runTop(const std::string& dir, double intervalSeconds, bool once) {
  std::uint64_t shownSequence = 0;
  bool shownAny = false;
  while (true) {
    const auto latest = findLatest(dir);
    if (!latest) {
      if (once) {
        std::fprintf(stderr, "telemetry_top: no snapshot_*.json in %s\n",
                     dir.c_str());
        return 1;
      }
    } else {
      const auto doc = JsonValue::parse(readFile(*latest));
      if (!doc.ok()) {
        // A writer may be mid-flight; skip this refresh and retry.
        if (once) {
          std::fprintf(stderr, "%s: %s\n", latest->string().c_str(),
                       doc.error().toString().c_str());
          return 1;
        }
      } else {
        const auto snap = TelemetrySnapshot::fromJson(doc.value());
        if (!snap.ok()) {
          std::fprintf(stderr, "%s: %s\n", latest->string().c_str(),
                       snap.error().toString().c_str());
          if (once) return 1;
        } else if (!shownAny || snap.value().sequence != shownSequence) {
          shownSequence = snap.value().sequence;
          shownAny = true;
          if (!once) std::printf("\033[H\033[2J");  // clear + home
          std::fputs(renderFrame(snap.value(), *latest).c_str(), stdout);
          std::fflush(stdout);
        }
      }
    }
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(intervalSeconds));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "telemetry-out";
  double intervalSeconds = 1.0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--lint") {
      std::vector<std::string> files(argv + i + 1, argv + argc);
      return runLint(files);
    }
    if (arg == "--interval" && i + 1 < argc) {
      intervalSeconds = std::max(0.1, std::atof(argv[++i]));
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: telemetry_top [dir] [--interval <seconds>] "
                  "[--once]\n       telemetry_top --lint <file.prom>...\n");
      return 0;
    } else {
      dir = arg;
    }
  }
  return runTop(dir, intervalSeconds, once);
}
