// domain_top: terminal viewer for the parallel core's per-domain telemetry.
//
// Usage:
//   domain_top [dir] [--interval <seconds>] [--once]
//
// Tails a snapshot directory exactly like telemetry_top (highest-sequence
// snapshot_*.json wins) but renders only the `edgesim_domain_*` series a
// telemetry::DomainProbe emits: a per-domain table (events, clock lifts,
// heap depth, clock lag, advance-slice latency, stall time), a per-channel
// table (messages, lookahead, inbox depth, via link), stall attribution
// (who blocked whom, how often) and the watchdog productive/redundant wake
// split.  `--once` renders a single frame and exits -- the nightly CI smoke
// uses it to prove a bench-produced snapshot carries the domain series.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/snapshot.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace edgesim;
using namespace edgesim::telemetry;

namespace {

std::string readFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string labelValue(const Labels& labels, const std::string& key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return std::string();
}

std::string fmtQuantileMs(const SnapshotHistogram& hist, double q) {
  const double value = hist.quantile(q);
  if (std::isnan(value)) return "-";
  return strprintf("%.2f", value * 1e3);
}

std::string fmtCount(std::uint64_t value) {
  return std::to_string(static_cast<unsigned long long>(value));
}

std::optional<std::filesystem::path> findLatest(const std::string& dir) {
  std::optional<std::filesystem::path> best;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("snapshot_") || !name.ends_with(".json")) continue;
    if (!best || best->filename().string() < name) best = entry.path();
  }
  return best;
}

void renderDomains(const TelemetrySnapshot& snap, std::string& out) {
  struct DomainRow {
    std::string name;
    std::uint64_t events = 0, lifts = 0;
    double heap = 0.0, lagSeconds = 0.0;
    const SnapshotHistogram* advance = nullptr;
    const SnapshotHistogram* stallWall = nullptr;
  };
  std::map<int, DomainRow> rows;  // ordered by numeric domain id
  const auto domainKey = [](const Labels& labels) {
    return std::atoi(labelValue(labels, "domain").c_str());
  };
  for (const auto& counter : snap.counters) {
    if (counter.name == "edgesim_domain_events_total") {
      auto& row = rows[domainKey(counter.labels)];
      row.events += counter.value;
      row.name = labelValue(counter.labels, "name");
    } else if (counter.name == "edgesim_domain_clock_lifts_total") {
      rows[domainKey(counter.labels)].lifts += counter.value;
    }
  }
  for (const auto& gauge : snap.gauges) {
    if (gauge.name == "edgesim_domain_heap_depth") {
      rows[domainKey(gauge.labels)].heap = gauge.value;
    } else if (gauge.name == "edgesim_domain_clock_lag_seconds") {
      rows[domainKey(gauge.labels)].lagSeconds = gauge.value;
    }
  }
  for (const auto& hist : snap.histograms) {
    if (hist.name == "edgesim_domain_advance_seconds") {
      rows[domainKey(hist.labels)].advance = &hist;
    } else if (hist.name == "edgesim_domain_stall_wall_seconds") {
      rows[domainKey(hist.labels)].stallWall = &hist;
    }
  }
  if (rows.empty()) return;
  Table table({"domain", "events", "lifts", "heap", "lag (ms)", "slices",
               "advance p95 (ms)", "stalls", "stall p95 (ms)",
               "stall wall (s)"});
  for (const auto& [id, row] : rows) {
    const std::string label =
        row.name.empty() ? strprintf("%d", id)
                         : strprintf("%d:%s", id, row.name.c_str());
    table.addRow(
        {label, fmtCount(row.events), fmtCount(row.lifts),
         strprintf("%.0f", row.heap), strprintf("%.2f", row.lagSeconds * 1e3),
         row.advance != nullptr ? fmtCount(row.advance->count) : "-",
         row.advance != nullptr ? fmtQuantileMs(*row.advance, 0.95) : "-",
         row.stallWall != nullptr ? fmtCount(row.stallWall->count) : "-",
         row.stallWall != nullptr ? fmtQuantileMs(*row.stallWall, 0.95) : "-",
         row.stallWall != nullptr ? strprintf("%.4f", row.stallWall->sum)
                                  : "-"});
  }
  out += "domains\n" + table.render() + "\n";
}

void renderChannels(const TelemetrySnapshot& snap, std::string& out) {
  struct ChannelRow {
    std::uint64_t messages = 0;
    double lookaheadSeconds = std::nan("");
    double inboxDepth = std::nan("");
    std::string via;
  };
  std::map<std::pair<int, int>, ChannelRow> rows;
  const auto pair = [](const Labels& labels) {
    return std::make_pair(std::atoi(labelValue(labels, "from").c_str()),
                          std::atoi(labelValue(labels, "to").c_str()));
  };
  for (const auto& counter : snap.counters) {
    if (counter.name != "edgesim_domain_channel_messages_total") continue;
    rows[pair(counter.labels)].messages += counter.value;
  }
  for (const auto& gauge : snap.gauges) {
    if (gauge.name == "edgesim_domain_channel_lookahead_seconds") {
      auto& row = rows[pair(gauge.labels)];
      row.lookaheadSeconds = gauge.value;
      row.via = labelValue(gauge.labels, "via");
    } else if (gauge.name == "edgesim_domain_channel_inbox_depth") {
      rows[pair(gauge.labels)].inboxDepth = gauge.value;
    }
  }
  if (rows.empty()) return;
  Table table({"channel", "messages", "lookahead (ms)", "inbox", "via"});
  for (const auto& [key, row] : rows) {
    table.addRow({strprintf("%d -> %d", key.first, key.second),
                  fmtCount(row.messages),
                  std::isnan(row.lookaheadSeconds)
                      ? "-"
                      : strprintf("%.3f", row.lookaheadSeconds * 1e3),
                  std::isnan(row.inboxDepth)
                      ? "-"
                      : strprintf("%.0f", row.inboxDepth),
                  row.via.empty() ? "-" : row.via});
  }
  out += "cross-domain channels\n" + table.render() + "\n";
}

void renderStalls(const TelemetrySnapshot& snap, std::string& out) {
  Table table({"stalled domain", "bound by", "stalls"});
  for (const auto& counter : snap.counters) {
    if (counter.name != "edgesim_domain_stalls_total") continue;
    table.addRow({labelValue(counter.labels, "domain"),
                  labelValue(counter.labels, "bound_by"),
                  fmtCount(counter.value)});
  }
  if (table.rowCount() == 0) return;
  out += "stall attribution (bound_by = source domain of the gating "
         "channel)\n" +
         table.render() + "\n";
}

void renderWatchdog(const TelemetrySnapshot& snap, std::string& out) {
  const std::uint64_t passes =
      snap.counterTotal("edgesim_domain_watchdog_passes_total");
  const std::uint64_t productive = snap.counterValue(
      "edgesim_domain_watchdog_wakes_total", {{"result", "productive"}});
  const std::uint64_t redundant = snap.counterValue(
      "edgesim_domain_watchdog_wakes_total", {{"result", "redundant"}});
  const auto* external = snap.findGauge("edgesim_domain_external_inbox_depth");
  if (passes + productive + redundant == 0 && external == nullptr) return;
  out += strprintf(
      "watchdog passes %llu  wakes productive %llu / redundant %llu  "
      "external inbox %.0f\n\n",
      static_cast<unsigned long long>(passes),
      static_cast<unsigned long long>(productive),
      static_cast<unsigned long long>(redundant),
      external != nullptr ? external->value : 0.0);
}

std::string renderFrame(const TelemetrySnapshot& snap,
                        const std::filesystem::path& path) {
  std::string out = strprintf("domain_top -- %s  (seq %llu, sim t=%.1fs)\n\n",
                              path.string().c_str(),
                              static_cast<unsigned long long>(snap.sequence),
                              snap.simTimeSeconds);
  const std::size_t before = out.size();
  renderDomains(snap, out);
  renderChannels(snap, out);
  renderStalls(snap, out);
  renderWatchdog(snap, out);
  if (out.size() == before) {
    out += "no edgesim_domain_* series in this snapshot -- was a "
           "DomainProbe attached?\n";
  }
  return out;
}

int runTop(const std::string& dir, double intervalSeconds, bool once) {
  std::uint64_t shownSequence = 0;
  bool shownAny = false;
  while (true) {
    const auto latest = findLatest(dir);
    if (!latest) {
      if (once) {
        std::fprintf(stderr, "domain_top: no snapshot_*.json in %s\n",
                     dir.c_str());
        return 1;
      }
    } else {
      const auto doc = JsonValue::parse(readFile(*latest));
      if (!doc.ok()) {
        // A writer may be mid-flight; skip this refresh and retry.
        if (once) {
          std::fprintf(stderr, "%s: %s\n", latest->string().c_str(),
                       doc.error().toString().c_str());
          return 1;
        }
      } else {
        const auto snap = TelemetrySnapshot::fromJson(doc.value());
        if (!snap.ok()) {
          std::fprintf(stderr, "%s: %s\n", latest->string().c_str(),
                       snap.error().toString().c_str());
          if (once) return 1;
        } else if (!shownAny || snap.value().sequence != shownSequence) {
          shownSequence = snap.value().sequence;
          shownAny = true;
          if (!once) std::printf("\033[H\033[2J");  // clear + home
          std::fputs(renderFrame(snap.value(), *latest).c_str(), stdout);
          std::fflush(stdout);
        }
      }
    }
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(intervalSeconds));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "telemetry-out";
  double intervalSeconds = 1.0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--interval" && i + 1 < argc) {
      intervalSeconds = std::max(0.1, std::atof(argv[++i]));
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: domain_top [dir] [--interval <seconds>] [--once]\n");
      return 0;
    } else {
      dir = arg;
    }
  }
  return runTop(dir, intervalSeconds, once);
}
