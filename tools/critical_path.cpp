// critical_path: straggler analysis for an exported domain trace.
//
// Usage:
//   critical_path <trace.json> [--json <out.json>]
//
// Reads a Chrome trace_event document that was exported with domain tracing
// enabled (telemetry::DomainProbe attached with a TraceRecorder -- the pid-2
// "edgesim-domains" process), runs trace::analyzeDomainTrace over it and
// prints the per-domain busy/stall/idle breakdown, the top stall-causing
// channels, the straggler and the stall chain.  `--json` additionally dumps
// the machine-readable report for CI to archive next to the trace.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/critical_path.hpp"
#include "util/json.hpp"

using namespace edgesim;

namespace {

std::string readFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string traceFile;
  std::string jsonOut;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      jsonOut = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: critical_path <trace.json> [--json <out.json>]\n");
      return 0;
    } else {
      traceFile = arg;
    }
  }
  if (traceFile.empty()) {
    std::fprintf(stderr, "critical_path: no trace file given (--help)\n");
    return 2;
  }
  if (!std::filesystem::exists(traceFile)) {
    std::fprintf(stderr, "%s: no such file\n", traceFile.c_str());
    return 1;
  }
  const auto doc = JsonValue::parse(readFile(traceFile));
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", traceFile.c_str(),
                 doc.error().toString().c_str());
    return 1;
  }
  const auto report = trace::analyzeDomainTrace(doc.value());
  if (!report.ok()) {
    std::fprintf(stderr, "%s: %s\n", traceFile.c_str(),
                 report.error().toString().c_str());
    return 1;
  }
  std::fputs(report.value().render().c_str(), stdout);
  if (!jsonOut.empty()) {
    std::ofstream out(jsonOut);
    out << report.value().toJson().dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "critical_path: failed to write %s\n",
                   jsonOut.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", jsonOut.c_str());
  }
  return 0;
}
